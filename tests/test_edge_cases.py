"""Edge-case and option-plumbing tests across modules."""

import pytest

from repro.codegen import CodegenOptions, assemble_function
from repro.codegen.machine import MachineBlock, MachineFunction
from repro.compiler import BuildOptions, build_executable, compile_program
from repro.core import BoltOptions
from repro.isa import CondCode, Instruction, Op, decode_stream
from repro.linker import link, LinkError
from repro.uarch import Machine, run_binary
from repro.workloads import WorkloadSpec


def test_bolt_options_copy_is_independent():
    options = BoltOptions()
    clone = options.copy(icf=False, reorder_blocks="cache")
    assert options.icf and not clone.icf
    assert clone.reorder_blocks == "cache"
    assert options.reorder_blocks == "cache+"


def test_codegen_options_copy():
    options = CodegenOptions(repz_ret=False)
    clone = options.copy(align_loops=False)
    assert not clone.repz_ret and not clone.align_loops
    assert options.align_loops


def test_build_options_copy():
    options = BuildOptions(lto=True)
    clone = options.copy(instrument=True)
    assert clone.lto and clone.instrument
    assert not options.instrument


def test_workload_spec_copy():
    spec = WorkloadSpec("x", seed=3, modules=2)
    clone = spec.copy(seed=4)
    assert clone.seed == 4 and clone.modules == 2
    assert spec.seed == 3


def test_relaxation_cascade():
    """A chain of branches where relaxing one pushes others long."""
    mf = MachineFunction("f", "f")
    blocks = []
    first = MachineBlock("b0")
    first.insns = [Instruction(Op.JCC_SHORT, cc=CondCode.EQ, label="end")]
    blocks.append(first)
    # ~125 bytes of padding: the first branch is just on the short/long
    # edge; every intermediate branch adds pressure.
    for i in range(6):
        block = MachineBlock(f"mid{i}")
        block.insns = [
            Instruction(Op.NOPN, imm=20),
            Instruction(Op.JCC_SHORT, cc=CondCode.NE, label="end"),
        ]
        blocks.append(block)
    end = MachineBlock("end")
    end.insns = [Instruction(Op.RET)]
    blocks.append(end)
    mf.blocks = blocks
    image = assemble_function(mf, normalize=False)
    insns = decode_stream(image.code)
    # All branches resolve to the same target.
    targets = {i.target for i in insns if i.is_cond_branch}
    assert targets == {image.labels["end"]}
    # Early branches went long; the last stayed short.
    forms = [i.op for i in insns if i.is_cond_branch]
    assert forms[0] == Op.JCC_LONG
    assert forms[-1] == Op.JCC_SHORT


def test_linker_function_order_with_unknown_names():
    objs = compile_program([("m", "func main() { return 0; }")]).objects
    exe = link(objs, function_order=["ghost", "main"])
    assert exe.entry == exe.get_symbol("main").value


def test_linker_duplicate_between_app_and_lib():
    app = compile_program([("a", "func f() { return 1; }\n"
                                 "func main() { return f(); }")]).objects
    lib = compile_program([("lib", "func f() { return 2; }")]).objects
    with pytest.raises(LinkError):
        link(app, libs=lib)


def test_machine_poke_unknown_array():
    exe, _ = build_executable([("t", "func main() { return 0; }")])
    machine = Machine(exe)
    with pytest.raises(KeyError):
        machine.poke_array("t::nope", [1])


def test_peek_counters_roundtrip():
    exe, _ = build_executable([("t", """
array data[4];
func main() { data[1] = 77; return 0; }
""")])
    machine = Machine(exe)
    cpu_exe = run_binary(exe)
    machine2 = cpu_exe.machine
    assert machine2.peek_array("t::data", 4) == [0, 77, 0, 0]


def test_interp_set_unknown_array():
    from repro.lang import parse_module
    from repro.lang.interp import Interpreter

    interp = Interpreter([parse_module("func main() { return 0; }", "t")])
    with pytest.raises(KeyError):
        interp.set_array("t", "nope", [1])


def test_empty_function_body():
    exe, _ = build_executable([("t", "func noop() { }\n"
                                     "func main() { return noop(); }")])
    assert run_binary(exe).exit_code == 0


def test_out_negative_values():
    exe, _ = build_executable([("t", "func main() { out -1; out -(1 << 62); return 0; }")])
    assert run_binary(exe).output == [-1, -(1 << 62)]


def test_single_module_many_functions():
    funcs = "\n".join(f"func f{i}(x) {{ return x + {i}; }}"
                      for i in range(80))
    calls = " + ".join(f"f{i}({i})" for i in range(80))
    exe, _ = build_executable([("t", funcs + f"""
func main() {{ out {calls}; return 0; }}""")])
    cpu = run_binary(exe)
    assert cpu.output == [sum(2 * i for i in range(80))]
