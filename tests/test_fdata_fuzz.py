"""Fuzzing the tolerant ``.fdata`` shard parser.

A fleet always contains a corrupt writer or a truncated upload, so the
shard parser must never raise and must never *silently* drop: every
rejected line surfaces as a BOLT-WARNING/BOLT-ERROR diagnostic with a
stable ``FD0xx`` rule ID (PR 2 lint-rule style) and is accounted in the
per-shard drop statistics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.diagnostics import Diagnostics, Severity
from repro.profiling import (
    BinaryProfile,
    FDATA_RULES,
    parse_fdata_shard,
    write_fdata,
)
from repro.profiling.merge import MAX_LINE_DIAGS

pytestmark = pytest.mark.aggregate

GOOD_LINE = "1 a 1 1 b 0 0 7"

MALFORMED_CASES = [
    ("1 f 10 1 g", "FD001"),                # truncated branch line
    ("1 f 10 1 g 20 0 5 9", "FD001"),       # too many fields
    ("1 f 10 2 g 20 0 5", "FD001"),         # bad second marker
    ("1 f zz 1 g 20 0 5", "FD004"),         # non-hex offset
    ("1 f 10 1 g 20 0 xyz", "FD004"),       # non-integer count
    ("1 f 10 1 g 20 0 -5", "FD005"),        # negative count
    ("1 f 10 1 g 20 -1 5", "FD005"),        # negative mispredicts
    ("S f 10", "FD002"),                    # truncated sample line
    ("S f 10 3 4", "FD002"),                # too many fields
    ("S f xx 3", "FD004"),                  # non-hex offset
    ("S f 10 -3", "FD005"),                 # negative sample count
    ("Q what is this", "FD003"),            # unknown discriminator
]


@pytest.mark.parametrize("line,rule", MALFORMED_CASES)
def test_malformed_line_gets_stable_rule_id(line, rule):
    diags = Diagnostics()
    profile, stats = parse_fdata_shard(
        f"# event: cycles\n{line}\n{GOOD_LINE}\n", diags, shard="s0")
    # The bad line is dropped under exactly one rule; the good line
    # still parses — one host's corruption never sinks its shard.
    assert stats.dropped == {rule: 1}
    assert profile.total_branch_count() == 7
    matching = [d for d in diags if d.message.startswith(rule)]
    assert len(matching) == 1
    assert matching[0].severity == Severity.WARNING
    assert matching[0].function == "s0"
    assert matching[0].render().startswith("BOLT-WARNING: merge-fdata [s0]")


def test_mixed_build_id_headers_conflict():
    diags = Diagnostics()
    text = f"# build-id: aaa\n# build-id: bbb\n{GOOD_LINE}\n"
    profile, stats = parse_fdata_shard(text, diags)
    assert profile.build_id == "aaa"          # first value wins
    assert stats.dropped == {"FD006": 1}
    assert any(d.message.startswith("FD006") for d in diags)


def test_repeated_identical_header_is_fine():
    diags = Diagnostics()
    text = f"# build-id: aaa\n# build-id: aaa\n# event: cycles\n{GOOD_LINE}\n"
    _, stats = parse_fdata_shard(text, diags)
    assert stats.dropped == {}
    assert len(diags) == 0


def test_unknown_comment_lines_are_ignored():
    _, stats = parse_fdata_shard(f"# made by: somebody\n{GOOD_LINE}\n")
    assert stats.dropped == {}
    assert stats.branch_lines == 1


def test_diagnostic_flood_is_capped():
    n = MAX_LINE_DIAGS * 4
    diags = Diagnostics()
    _, stats = parse_fdata_shard("\n".join(["Z junk"] * n), diags)
    assert stats.dropped == {"FD003": n}            # all accounted...
    fd003 = [d for d in diags if d.message.startswith("FD003")]
    assert len(fd003) == MAX_LINE_DIAGS + 1         # ...capped + summary
    assert f"{n} total" in fd003[-1].message


def test_rule_table_is_stable():
    """The rule IDs are a public contract (suppressions, CI gates)."""
    assert {rule_id: rule.severity for rule_id, rule in FDATA_RULES.items()} == {
        "FD001": "warning", "FD002": "warning", "FD003": "warning",
        "FD004": "warning", "FD005": "warning", "FD006": "warning",
        "FD007": "warning", "FD008": "warning", "FD009": "warning",
        "FD010": "warning", "FD011": "error", "FD012": "error",
        "FD013": "warning",
    }
    for rule_id, rule in FDATA_RULES.items():
        assert rule.id == rule_id
        assert rule.summary


ascii_lines = st.lists(
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=40),
    max_size=30)


@given(ascii_lines)
@settings(deadline=None, max_examples=150)
def test_fuzz_arbitrary_text_never_raises(lines):
    text = "\n".join(lines)
    diags = Diagnostics()
    profile, stats = parse_fdata_shard(text, diags)
    # Accounting invariant: every candidate record line either parsed
    # or was dropped under a rule (FD006 drops are header lines, which
    # are not record candidates).
    header_drops = stats.dropped.get("FD006", 0)
    assert (stats.branch_lines + stats.sample_lines
            + stats.dropped_total - header_drops == stats.lines)
    # Whatever survived still serializes.
    write_fdata(profile)


@given(ascii_lines, st.integers(0, 400))
@settings(deadline=None, max_examples=100)
def test_fuzz_truncated_file_never_raises(lines, cut):
    text = "\n".join(["# event: cycles", GOOD_LINE] + lines)
    parse_fdata_shard(text[:cut])


JUNK = ("Z junk", "1 bad", "S x", "1 a 1 1 b 0 0 -1", "\x00\x01", "1")


@given(st.lists(st.sampled_from(JUNK), min_size=1, max_size=6),
       st.randoms(use_true_random=False))
@settings(deadline=None, max_examples=60)
def test_fuzz_junk_injection_preserves_valid_records(junk, rng):
    profile = BinaryProfile(build_id="bid-a")
    profile.add_branch(("f", 4), ("g", 0), count=11)
    profile.add_branch(("g", 8), ("g", 2), mispred=True, count=3)
    profile.add_sample(("f", 12), 9)
    clean_lines = write_fdata(profile).splitlines()
    dirty = list(clean_lines)
    for line in junk:
        dirty.insert(rng.randrange(len(dirty) + 1), line)

    diags = Diagnostics()
    parsed, stats = parse_fdata_shard("\n".join(dirty), diags)
    assert stats.dropped_total == len(junk)
    assert parsed.branches == profile.branches
    assert parsed.ip_samples == profile.ip_samples
    assert parsed.build_id == "bid-a"
    # Nothing silent: one diagnostic per rejected line (under the cap).
    assert len(diags) == len(junk)
