"""BOLT front-half tests: discovery, disassembly, CFG reconstruction,
jump tables, non-simple detection, profile attachment."""

import pytest

from repro.compiler import BuildOptions, build_executable
from repro.core import BinaryContext, BoltOptions
from repro.core.cfg_builder import build_all_functions
from repro.core.discovery import discover_functions
from repro.core.profile_attach import attach_profile
from repro.codegen import CodegenOptions
from repro.ir import InlinePolicy
from repro.isa import Op
from repro.profiling import profile_binary, SamplingConfig


def analyzed(sources, bolt_options=None, build_options=None, **link_kwargs):
    exe, _ = build_executable(
        sources, build_options or BuildOptions(),
        emit_relocs=link_kwargs.pop("emit_relocs", True), **link_kwargs)
    context = BinaryContext(exe, bolt_options or BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    return exe, context


def test_discovery_finds_all_functions():
    exe, context = analyzed([("m", """
func a() { return 1; }
static func b() { return 2; }
func main() { return a() + b(); }
""")])
    assert set(context.functions) == {"a", "m::b", "main"}
    for func in context.functions.values():
        assert func.size > 0
        assert func.raw_bytes


def test_cfg_blocks_and_edges():
    exe, context = analyzed([("m", """
func f(x) {
  if (x > 0) { return 1; }
  return 2;
}
func main() { return f(3); }
""")])
    func = context.functions["f"]
    assert func.is_simple
    assert len(func.blocks) >= 3
    entry = func.blocks[func.entry_label]
    assert len(entry.successors) == 2
    assert entry.fallthrough_label in entry.successors


def test_calls_symbolized():
    exe, context = analyzed([("m", """
func callee(x) { return x; }
func main() {
  var a = callee(1);
  return a + callee(2);
}
""")], build_options=BuildOptions(inline=InlinePolicy(max_size=0)))
    main = context.functions["main"]
    calls = [i for b in main.blocks.values() for i in b.insns if i.is_call]
    named = [i for i in calls if i.sym is not None and i.sym.name == "callee"]
    assert len(named) == 2


def test_tail_call_annotation():
    exe, context = analyzed([("m", """
var gate = 1;
func target() { return 5; }
func f() {
  if (gate > 0) { return target(); }
  return 0;
}
func main() { return f(); }
""")], build_options=BuildOptions(inline=InlinePolicy(max_size=0)))
    f = context.functions["f"]
    tails = [i for b in f.blocks.values() for i in b.insns
             if i.get_annotation("tailcall", "!") != "!"]
    assert tails and tails[0].sym.name == "target"


def test_jump_table_recovery():
    exe, context = analyzed([("m", """
func f(x) {
  switch (x) {
    case 0: { return 10; } case 1: { return 11; }
    case 2: { return 12; } case 3: { return 13; }
    case 4: { return 14; }
  }
  return -1;
}
func main() { return f(2); }
""")])
    f = context.functions["f"]
    assert f.is_simple
    assert len(f.jump_tables) == 1
    table = f.jump_tables[0]
    assert len(table.entries) == 5
    dispatch = [b for b in f.blocks.values()
                if b.insns and b.insns[-1].op == Op.JMP_REG]
    assert dispatch
    assert set(table.entries) <= set(dispatch[0].successors)


def test_indirect_tail_call_is_non_simple():
    exe, context = analyzed([("m", """
var h = 0;
func t(x) { return x; }
func init() { h = &t; return 0; }
func itail(x) {
  var f = h;
  return f(x);
}
func main() { init(); return itail(4); }
""")])
    itail = context.functions["itail"]
    assert not itail.is_simple
    assert "indirect" in itail.simple_violation


def test_landing_pads_connected():
    exe, context = analyzed([("m", """
func risky(x) {
  if (x > 2) { throw x; }
  return x;
}
func f(x) {
  var r = 0;
  try { r = risky(x); } catch (e) { r = e; }
  return r;
}
func main() { return f(1); }
""")], build_options=BuildOptions(inline=InlinePolicy(max_size=0)))
    f = context.functions["f"]
    lps = [b for b in f.blocks.values() if b.is_landing_pad]
    assert len(lps) == 1
    callers = [b for b in f.blocks.values() if lps[0].label in b.landing_pads]
    assert callers
    call = [i for b in callers for i in b.insns
            if i.get_annotation("lp") == lps[0].label]
    assert call


def test_nop_stripping():
    exe, context = analyzed(
        [("m", """
func main() {
  var i = 0;
  while (i < 3) { i = i + 1; }
  return i;
}
""")],
        bolt_options=BoltOptions(strip_nops=True))
    main = context.functions["main"]
    for block in main.blocks.values():
        assert not any(i.is_nop for i in block.insns)
    # With stripping off the alignment NOPs survive.
    exe2, context2 = analyzed(
        [("m", """
func main() {
  var i = 0;
  while (i < 3) { i = i + 1; }
  return i;
}
""")],
        bolt_options=BoltOptions(strip_nops=False))
    main2 = context2.functions["main"]
    assert any(i.is_nop for b in main2.blocks.values() for i in b.insns)


def test_plt_annotation():
    exe, context = analyzed([
        ("m", "func main() { out util(3); return 0; }")],
        libs=[("lib", "func util(x) { return x * 2; }")],
        build_options=BuildOptions(inline=InlinePolicy(max_size=0)))
    main = context.functions["main"]
    plt_calls = [i for b in main.blocks.values() for i in b.insns
                 if i.get_annotation("plt") is not None]
    assert plt_calls
    got_addr, target = plt_calls[0].get_annotation("plt")
    assert exe.get_symbol("util").value == target


def test_funcaddr_symbolized_with_relocs():
    exe, context = analyzed([("m", """
func t(x) { return x; }
func main() {
  var f = &t;
  return f(1);
}
""")])
    main = context.functions["main"]
    movs = [i for b in main.blocks.values() for i in b.insns
            if i.op == Op.MOV_RI64 and i.sym is not None]
    assert movs and movs[0].sym.name == "t"


def test_funcaddr_not_symbolized_without_relocs():
    exe, context = analyzed([("m", """
func t(x) { return x; }
func main() {
  var f = &t;
  return f(1);
}
""")], emit_relocs=False)
    assert not context.use_relocations
    main = context.functions["main"]
    movs = [i for b in main.blocks.values() for i in b.insns
            if i.op == Op.MOV_RI64 and i.sym is not None]
    assert not movs


def test_line_annotations_present():
    exe, context = analyzed([("m", "func main() { out 1; return 0; }")])
    main = context.functions["main"]
    locs = [i.get_annotation("loc") for b in main.blocks.values()
            for i in b.insns]
    assert any(loc is not None for loc in locs)
    assert any(loc and loc[0] == "m.bc" for loc in locs)


def test_asm_function_without_frame_info_discovered():
    # Build leaf separately without frame info and link manually.
    from repro.compiler import compile_program
    from repro.linker import link

    app = compile_program([("m", "func main() { return leaf(1, 2); }")],
                          BuildOptions(inline=InlinePolicy(max_size=0)))
    asm = compile_program(
        [("asmmod", "func leaf(a, b) { return a + b * 3; }")],
        BuildOptions(codegen=CodegenOptions(frame_info=False)))
    exe = link(app.objects + asm.objects, emit_relocs=True)
    assert "leaf" not in exe.frame_records
    context = BinaryContext(exe, BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    leaf = context.functions["leaf"]
    assert leaf.is_simple and leaf.frame_record is None


# -- profile attachment ----------------------------------------------------------


BRANCHY = ("m", """
func skewed(x) {
  if (x % 10 == 0) { return x * 3; }
  return x + 1;
}
func main() {
  var i = 0;
  var acc = 0;
  while (i < 500) {
    acc = acc + skewed(i);
    i = i + 1;
  }
  out acc;
  return 0;
}
""")


def _attach(lbr=True, trust=True, mcf=True):
    options = BoltOptions(trust_fall_through=trust, use_mcf=mcf)
    exe, _ = build_executable(
        [BRANCHY], BuildOptions(inline=InlinePolicy(max_size=0)),
        emit_relocs=True)
    context = BinaryContext(exe, options)
    discover_functions(context)
    build_all_functions(context)
    profile, cpu = profile_binary(
        exe, sampling=SamplingConfig(period=41, use_lbr=lbr))
    attach_profile(context, profile)
    return context, profile, cpu


def test_attach_lbr_counts():
    context, profile, cpu = _attach()
    skewed = context.functions["skewed"]
    assert skewed.has_profile
    assert skewed.exec_count > 0
    entry = skewed.blocks[skewed.entry_label]
    assert entry.exec_count > 0
    # The rare then-branch must be much colder than the common path.
    counts = sorted(b.exec_count for b in skewed.blocks.values())
    assert counts[0] * 3 < counts[-1]


def test_attach_match_rate():
    context, _, _ = _attach()
    main = context.functions["main"]
    assert main.profile_match is not None
    assert main.profile_match > 0.95


def test_attach_fall_through_repair():
    context, _, _ = _attach(trust=True)
    main = context.functions["main"]
    # Flow sanity: entry count equals function exec count.
    entry = main.blocks[main.entry_label]
    assert entry.exec_count == main.exec_count
    # Every fall-through edge got a count despite LBR only recording
    # taken branches.
    ft_edges = [
        (b, b.fallthrough_label) for b in main.blocks.values()
        if b.fallthrough_label and b.exec_count > 0
    ]
    assert ft_edges
    assert any(b.edge_counts.get(ft, 0) > 0 for b, ft in ft_edges)


def test_attach_no_trust_leaves_fallthrough_cold():
    context, _, _ = _attach(trust=False)
    main = context.functions["main"]
    for block in main.blocks.values():
        if block.fallthrough_label:
            taken_elsewhere = [
                s for s in block.successors if s != block.fallthrough_label]
            if not taken_elsewhere:
                assert block.edge_counts.get(block.fallthrough_label, 0) == 0


def test_attach_nolbr_mcf():
    context, profile, cpu = _attach(lbr=False)
    skewed = context.functions["skewed"]
    assert skewed.has_profile
    total_edges = sum(
        sum(b.edge_counts.values()) for b in skewed.blocks.values())
    assert total_edges > 0


def test_attach_nolbr_proportional():
    context, profile, cpu = _attach(lbr=False, mcf=False)
    main = context.functions["main"]
    assert any(
        count > 0 for b in main.blocks.values()
        for count in b.edge_counts.values())


def test_icp_targets_annotated():
    exe, _ = build_executable([("m", """
var h = 0;
func t1(x) { return x + 1; }
func t2(x) { return x + 2; }
func init() { h = &t1; return 0; }
func caller(x) {
  var f = h;
  return f(x) + 1;
}
func main() {
  init();
  var i = 0;
  var acc = 0;
  while (i < 300) {
    acc = acc + caller(i);
    i = i + 1;
  }
  out acc;
  return 0;
}
""")], BuildOptions(inline=InlinePolicy(max_size=0)), emit_relocs=True)
    context = BinaryContext(exe, BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    profile, _ = profile_binary(exe, sampling=SamplingConfig(period=31))
    attach_profile(context, profile)
    caller = context.functions["caller"]
    targets = [i.get_annotation("call-targets")
               for b in caller.blocks.values() for i in b.insns
               if i.op == Op.CALL_REG]
    assert targets and targets[0]
    assert "t1" in targets[0]
