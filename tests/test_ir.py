"""IR construction and optimization tests."""

import pytest

from repro.ir import (
    Imm,
    IRInst,
    build_module,
    inline_module,
    InlinePolicy,
    layout_blocks,
    optimize_function,
    optimize_module,
)
from repro.ir.instrument import instrument_module, derive_edge_counts
from repro.ir.passes import eval_binop, split_critical_edges
from repro.lang import parse_module


def build(text, name="t"):
    return build_module(parse_module(text, name))


def func_of(text, fname):
    return build(text).functions[fname]


def count_insts(func, kind=None):
    total = 0
    for block in func.blocks.values():
        for inst in block.insts:
            if kind is None or inst.kind == kind:
                total += 1
    return total


# -- eval_binop ----------------------------------------------------------------


def test_eval_binop_division():
    assert eval_binop("/", -7, 2) == -3
    assert eval_binop("%", -7, 2) == -1
    assert eval_binop("/", 7, -2) == -3
    assert eval_binop("%", 7, -2) == 1
    assert eval_binop("/", 1, 0) is None
    assert eval_binop("%", 1, 0) is None


def test_eval_binop_wrapping():
    assert eval_binop("+", 2**63 - 1, 1) == -(2**63)
    assert eval_binop("*", 2**32, 2**32) == 0
    assert eval_binop("<<", 1, 64) == 1  # shift amounts mask to 6 bits


def test_eval_binop_comparisons():
    assert eval_binop("<", -1, 0) == 1
    assert eval_binop("u<", -1, 0) == 0  # unsigned view


# -- lowering ------------------------------------------------------------------


def test_builder_structure():
    func = func_of("""
func f(x) {
  var y = 0;
  if (x > 0) { y = 1; } else { y = 2; }
  while (y < 10) { y = y + x; }
  return y;
}
""", "f")
    kinds = {b.terminator.kind for b in func.blocks.values()}
    assert "cbr" in kinds and "ret" in kinds
    assert func.entry in func.blocks


def test_builder_switch():
    func = func_of("""
func f(x) {
  switch (x) { case 1: { return 10; } case 2: { return 20; } }
  return 0;
}
""", "f")
    assert any(b.terminator.kind == "switch" for b in func.blocks.values())


def test_builder_landing_pad_flagged():
    func = func_of("""
func f(x) {
  try { throw x; } catch (e) { return e; }
  return 0;
}
""", "f")
    assert any(b.is_landing_pad for b in func.blocks.values())
    throws = [i for b in func.blocks.values() for i in b.insts
              if i.kind == "throw"]
    assert throws and throws[0].lp is not None


def test_builder_call_lp_annotation():
    func = func_of("""
func g() { return 0; }
func f() {
  try { g(); } catch (e) { return e; }
  return 1;
}
""", "f")
    calls = [i for b in func.blocks.values() for i in b.insts
             if i.kind == "call"]
    assert calls and calls[0].lp is not None


def test_builder_short_circuit_blocks():
    func = func_of("func f(a, b) { if (a > 0 && b > 0) { return 1; } return 0; }",
                   "f")
    # && lowers to an extra block, not to a boolean materialization.
    assert count_insts(func, "binop") == 0


def test_builder_static_link_names():
    module = build("static func s() { return 0; } func g() { return s(); }")
    call = [i for b in module.functions["g"].blocks.values()
            for i in b.insts if i.kind == "call"][0]
    assert call.sym == "t::s"


def test_builder_unreachable_removed():
    func = func_of("func f() { return 1; return 2; }", "f")
    rets = [b for b in func.blocks.values() if b.terminator.kind == "ret"]
    assert len(rets) == 1


# -- optimizations ----------------------------------------------------------------


def test_const_folding():
    func = func_of("func f() { var x = 2 + 3 * 4; return x + 1; }", "f")
    optimize_function(func)
    # Everything folds to `ret $15`.
    ret = next(b.terminator for b in func.blocks.values()
               if b.terminator.kind == "ret")
    assert ret.a == Imm(15)
    assert count_insts(func, "binop") == 0


def test_const_branch_folding():
    func = func_of("""
func f() {
  if (1 > 2) { return 100; }
  return 200;
}
""", "f")
    optimize_function(func)
    assert len(func.blocks) == 1
    assert all(b.terminator.kind == "ret" for b in func.blocks.values())


def test_dce_keeps_side_effects():
    func = func_of("""
var g = 0;
func callee() { g = g + 1; return 9; }
func f() { var dead = callee(); return 0; }
""", "f")
    optimize_function(func)
    calls = [i for b in func.blocks.values() for i in b.insts
             if i.kind == "call"]
    assert len(calls) == 1
    assert calls[0].dst is None  # result dropped but call kept


def test_dce_removes_pure():
    func = func_of("func f(x) { var dead = x * 3 + 1; return x; }", "f")
    optimize_function(func)
    assert count_insts(func, "binop") == 0


def test_dce_keeps_trapping_division():
    func = func_of("func f(x, y) { var dead = x / y; return x; }", "f")
    optimize_function(func)
    assert count_insts(func, "binop") == 1  # division may trap: kept


def test_algebraic_identities():
    func = func_of("func f(x) { return (x + 0) * 1 / 1; }", "f")
    optimize_function(func)
    assert count_insts(func, "binop") == 0


def test_block_merging():
    func = func_of("""
func f(x) {
  var a = x + 1;
  if (1) { a = a + 2; }
  return a;
}
""", "f")
    optimize_function(func)
    assert len(func.blocks) == 1


def test_optimize_preserves_edge_counts_on_thread():
    func = func_of("""
func f(x) {
  if (x > 0) { return 1; }
  return 2;
}
""", "f")
    split_critical_edges(func)
    for name, block in func.blocks.items():
        block.count = 10
    func.edge_counts = {
        (a, s): 5 for a, b in func.blocks.items() for s in b.successors()
    }
    optimize_function(func)
    assert all(count >= 0 for count in func.edge_counts.values())


# -- inlining ----------------------------------------------------------------------


def test_inline_same_module():
    module = build("""
func tiny(x) { return x + 1; }
func caller(y) { return tiny(y) * 2; }
""")
    inline_module([module], InlinePolicy(max_size=10))
    caller = module.functions["caller"]
    assert count_insts(caller, "call") == 0


def test_inline_cross_module_requires_lto():
    m1 = build("func tiny(x) { return x + 1; }", "m1")
    m2 = build("func caller(y) { return tiny(y); }", "m2")
    inline_module([m1, m2], InlinePolicy(max_size=10), lto=False)
    assert count_insts(m2.functions["caller"], "call") == 1
    inline_module([m1, m2], InlinePolicy(max_size=10), lto=True)
    assert count_insts(m2.functions["caller"], "call") == 0


def test_inline_respects_size_threshold():
    module = build("""
func big(x) {
  var a = x + 1; a = a * 2; a = a + 3; a = a * 4; a = a + 5;
  a = a * 6; a = a + 7; a = a * 8; a = a + 9; a = a * 10;
  a = a + 11; a = a * 12; a = a + 13; a = a * 14;
  return a;
}
func caller(y) { return big(y); }
""")
    inline_module([module], InlinePolicy(max_size=4))
    assert count_insts(module.functions["caller"], "call") == 1


def test_inline_no_self_recursion():
    module = build("func r(x) { if (x > 0) { return r(x - 1); } return 0; }")
    inline_module([module], InlinePolicy(max_size=100))
    assert count_insts(module.functions["r"], "call") == 1


def test_inline_profile_scaling():
    module = build("""
func callee(x) { if (x > 0) { return 1; } return 2; }
func caller(y) { return callee(y); }
""")
    callee = module.functions["callee"]
    caller = module.functions["caller"]
    for block in callee.blocks.values():
        block.count = 100
    callee.entry_count = 100
    for block in caller.blocks.values():
        block.count = 50
    caller.entry_count = 50
    inline_module([module], InlinePolicy(max_size=50), use_profile=True)
    cloned = [b for name, b in caller.blocks.items() if "_inl" in name]
    assert cloned
    assert all(b.count == 50 for b in cloned)  # scaled by 50/100 * 100


def test_inline_landing_pad_propagation():
    module = build("""
func risky(x) { return dangerous(x); }
func f(y) {
  var r = 0;
  try { r = risky(y); } catch (e) { r = e; }
  return r;
}
""")
    inline_module([module], InlinePolicy(max_size=20))
    f = module.functions["f"]
    inlined_calls = [i for b in f.blocks.values() for i in b.insts
                     if i.kind == "call" and i.sym == "dangerous"]
    assert inlined_calls and inlined_calls[0].lp is not None


# -- instrumentation ----------------------------------------------------------------


def test_instrument_counts_blocks():
    module = build("""
func f(x) {
  if (x > 0) { return 1; }
  return 2;
}
""")
    keys = instrument_module(module)
    func = module.functions["f"]
    profcounts = count_insts(func, "profcount")
    assert profcounts == len(func.blocks) == len(keys)
    assert all(key[0] == "f" for key in keys)


def test_instrument_landing_pad_position():
    module = build("""
func f(x) {
  try { throw x; } catch (e) { return e; }
  return 0;
}
""")
    instrument_module(module)
    func = module.functions["f"]
    for block in func.blocks.values():
        if block.is_landing_pad:
            assert block.insts[0].kind == "landingpad"
            assert block.insts[1].kind == "profcount"


def test_derive_edge_counts_exact():
    module = build("""
func f(x) {
  var s = 0;
  if (x > 0) { s = 1; } else { s = 2; }
  return s;
}
""")
    func = module.functions["f"]
    split_critical_edges(func)
    # Simulate: entry 10 times, then-branch 7, else 3.
    counts = {}
    preds = func.predecessors()
    entry = func.entry
    then_block = next(n for n in func.blocks if n.startswith("then"))
    else_block = next(n for n in func.blocks if n.startswith("else"))
    join = next(n for n in func.blocks if n.startswith("join"))
    counts = {entry: 10, then_block: 7, else_block: 3, join: 10}
    for name in func.blocks:
        counts.setdefault(name, 0)
    edges = derive_edge_counts(func, counts)
    assert edges[(entry, then_block)] == 7
    assert edges[(entry, else_block)] == 3


def test_split_critical_edges():
    module = build("""
func f(x) {
  while (x > 0) {
    if (x % 2 == 0) { x = x - 2; } else { x = x - 1; }
  }
  return x;
}
""")
    func = module.functions["f"]
    split_critical_edges(func)
    preds = func.predecessors()
    for name, block in func.blocks.items():
        succs = block.successors()
        if len(succs) > 1:
            for succ in succs:
                assert len(preds[succ]) == 1, f"critical edge to {succ}"


# -- layout ------------------------------------------------------------------------


def test_layout_hot_fallthrough():
    module = build("""
func f(x) {
  if (x == 0) { return 111; }
  return 222;
}
""")
    func = module.functions["f"]
    split_critical_edges(func)
    then_block = next(n for n in func.blocks if n.startswith("then"))
    # Make the 'else' side hot: layout should put it right after entry.
    for name, block in func.blocks.items():
        block.count = 5 if name == then_block else 100
    func.edge_counts = {}
    entry = func.entry
    for succ in func.blocks[entry].successors():
        func.edge_counts[(entry, succ)] = 5 if succ == then_block else 95
    layout_blocks(func)
    order = list(func.blocks)
    assert order[0] == entry
    assert order.index(then_block) > 1  # cold side pushed later


def test_layout_noop_without_profile():
    module = build("func f(x) { if (x) { return 1; } return 2; }")
    func = module.functions["f"]
    before = list(func.blocks)
    layout_blocks(func)
    assert list(func.blocks) == before


# -- local CSE -----------------------------------------------------------------


def cse_func(text, fname="f"):
    func = func_of(text, fname)
    optimize_function(func)
    return func


def test_cse_reuses_pure_expression():
    func = cse_func("""
array a[8];
func f(x) {
  var p = a[x] * 3;
  var q = a[x] * 3;
  return p + q;
}
""")
    assert count_insts(func, "loadidx") == 1
    muls = [i for b in func.blocks.values() for i in b.insts
            if i.kind == "binop" and i.oper == "*"]
    assert len(muls) == 1


def test_cse_invalidated_by_store():
    func = cse_func("""
array a[8];
func f(x) {
  var p = a[x];
  a[0] = 99;
  var q = a[x];
  return p + q;
}
""")
    assert count_insts(func, "loadidx") == 2


def test_cse_invalidated_by_call():
    func = cse_func("""
var g = 1;
func other() { g = g + 1; return 0; }
func f() {
  var p = g;
  other();
  var q = g;
  return p + q;
}
""")
    assert count_insts(func, "loadg") == 2


def test_cse_invalidated_by_operand_redefinition():
    func = cse_func("""
func f(x) {
  var p = x * 5;
  x = x + 1;
  var q = x * 5;
  return p + q;
}
""")
    muls = [i for b in func.blocks.values() for i in b.insts
            if i.kind == "binop" and i.oper == "*"]
    assert len(muls) == 2


def test_cse_never_merges_trapping_division():
    func = cse_func("""
func f(x, y) {
  var p = x / y;
  var q = x / y;
  return p + q;
}
""")
    divs = [i for b in func.blocks.values() for i in b.insts
            if i.kind == "binop" and i.oper == "/"]
    assert len(divs) == 2


def test_cse_semantics_end_to_end():
    from repro.compiler import build_executable
    from repro.uarch import run_binary
    from repro.lang.interp import Interpreter
    from repro.lang import parse_module

    src = """
array a[8] = {5, 6, 7, 8};
var g = 10;
func bump() { g = g + 1; return g; }
func main() {
  var x = 2;
  var p = a[x] * g + a[x] * g;
  bump();
  var q = a[x] * g;
  out p; out q;
  return 0;
}
"""
    interp = Interpreter([parse_module(src, "t")])
    interp.run("main")
    exe, _ = build_executable([("t", src)])
    assert run_binary(exe).output == interp.output
