"""The PR-3 performance layer: pass/phase timing, parallel per-function
pass execution (byte-identical to serial), the fast CFG snapshot, and
the diagnostics routing of formerly-silent failure paths."""

import json

import pytest

from repro.belf import write_binary
from repro.compiler import BuildOptions, build_executable
from repro.core import BinaryContext, BoltOptions, optimize_binary
from repro.core._reference_kernels import (
    linetable_lookup_reference,
    snapshot_function_deepcopy,
)
from repro.core.cfg_builder import build_all_functions
from repro.core.discovery import discover_functions
from repro.core.passes.base import BinaryPass, PassManager
from repro.core.reports import dump_function, format_timing_table
from repro.core.validate import validate_execution
from repro.ir import InlinePolicy
from repro.profiling import SamplingConfig, profile_binary
from repro.uarch import run_binary

SRC = ("app", """
const array lut[8] = {3, 1, 4, 1, 5, 9, 2, 6};

func helper(x) { return x + lut[x % 8]; }

func spin(x) {
  switch (x % 8) {
    case 0: { return 10; } case 1: { return 11; }
    case 2: { return 12; } case 3: { return 13; }
    case 4: { return 14; } case 5: { return 15; }
    default: { return 0; }
  }
}

func work(i) { return helper(i) + spin(i); }

func main() {
  var i = 0;
  var total = 0;
  while (i < 500) {
    total = total + work(i);
    i = i + 1;
  }
  out total;
  return 0;
}
""")


@pytest.fixture(scope="module")
def baseline():
    exe = build_executable([SRC], BuildOptions(
        inline=InlinePolicy(max_size=6)), emit_relocs=True)[0]
    profile, _ = profile_binary(exe, sampling=SamplingConfig(period=43))
    return exe, run_binary(exe), profile


def _context(exe, options=None):
    context = BinaryContext(exe, options or BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    return context


# -- timing subsystem --------------------------------------------------------


def test_time_opts_records_every_pass(baseline):
    exe, _, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions(time_opts=True))
    timing = result.timing
    assert timing is not None and timing.passes
    names = [p.name for p in timing.passes]
    assert "reorder-bbs" in names and "reorder-functions" in names
    assert all(p.seconds >= 0 for p in timing.passes)
    assert all(p.functions is not None for p in timing.passes)
    table = format_timing_table(timing)
    assert "BOLT-INFO: pass timing" in table
    assert "reorder-bbs" in table
    assert table in result.summary()


def test_time_rewrite_records_phases_and_total(baseline):
    exe, _, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions(time_rewrite=True))
    timing = result.timing
    assert timing is not None
    phases = [p.name for p in timing.phases]
    assert "build CFGs" in phases
    assert "optimization passes" in phases
    assert "emit and link" in phases
    assert "validate gate" in phases
    assert timing.total_seconds is not None and timing.total_seconds > 0
    assert not timing.passes  # -time-opts not requested


def test_timing_json_round_trips(baseline):
    exe, _, profile = baseline
    result = optimize_binary(
        exe, profile, BoltOptions(time_opts=True, time_rewrite=True))
    doc = json.loads(result.timing.to_json())
    assert doc["total_seconds"] > 0
    assert {p["name"] for p in doc["phases"]} >= {"build CFGs",
                                                  "emit and link"}
    assert all("seconds" in p for p in doc["passes"])


def test_timing_off_by_default(baseline):
    exe, _, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions())
    assert result.timing is None


# -- parallel pass execution -------------------------------------------------


def test_threads_output_byte_identical(baseline):
    exe, cpu, profile = baseline
    serial = optimize_binary(exe, profile, BoltOptions(threads=1))
    parallel = optimize_binary(exe, profile, BoltOptions(threads=4))
    assert write_binary(serial.binary) == write_binary(parallel.binary)
    opt = run_binary(parallel.binary)
    assert opt.output == cpu.output and opt.exit_code == cpu.exit_code


class _ExplodingPass(BinaryPass):
    name = "exploding"

    def run_on_function(self, context, func):
        if func.name == "spin":
            del func.blocks[func.entry_label]  # corrupt, then fail
            raise RuntimeError("boom")
        return {"visited": 1}


def test_parallel_containment_matches_serial(baseline):
    exe, _, _ = baseline
    outcomes = {}
    for threads in (1, 4):
        context = _context(exe, BoltOptions(threads=threads))
        stats = PassManager([_ExplodingPass()]).run(context)
        spin = context.functions["spin"]
        assert not spin.is_simple  # demoted, not lost
        assert spin.blocks  # snapshot restored before demotion
        outcomes[threads] = (
            stats,
            [d.render() for d in context.diagnostics],
            sorted(f.name for f in context.simple_functions()),
        )
    assert outcomes[1] == outcomes[4]


# -- fast snapshot (BinaryFunction.clone) ------------------------------------


def test_clone_matches_deepcopy_snapshot(baseline):
    exe, _, _ = baseline
    context = _context(exe)
    for func in context.simple_functions():
        fast, slow = func.clone(), snapshot_function_deepcopy(func)
        assert dump_function(fast) == dump_function(slow)
        assert fast.analysis_facts == slow.analysis_facts
        assert fast.raw_bytes == func.raw_bytes


def test_clone_isolates_mutations(baseline):
    exe, _, _ = baseline
    context = _context(exe)
    func = context.functions["work"]
    snap = func.clone()
    block = next(iter(func.blocks.values()))
    before = len(block.insns)
    block.insns.append(block.insns[0].copy())
    block.exec_count += 99
    func.analysis_facts.setdefault("x", []).append(1)
    snap_block = snap.blocks[block.label]
    assert len(snap_block.insns) == before
    assert snap_block.exec_count == block.exec_count - 99
    assert "x" not in snap.analysis_facts


def test_clone_preserves_jump_table_identity(baseline):
    exe, _, _ = baseline
    context = _context(exe)
    func = next(f for f in context.functions.values() if f.jump_tables)
    snap = func.clone()
    annotated = [insn.get_annotation("jump-table")
                 for block in snap.blocks.values()
                 for insn in block.insns
                 if insn.get_annotation("jump-table") is not None]
    assert annotated
    for table in annotated:
        # Annotations point at the *clone's* tables, not the original's.
        assert any(table is t for t in snap.jump_tables)
        assert not any(table is t for t in func.jump_tables)


# -- satellite fixes ---------------------------------------------------------


def test_linetable_cached_lookup_matches_reference(baseline):
    exe, _, _ = baseline
    table = exe.line_table
    assert table is not None and len(table)
    addrs = [e.addr for e in table]
    probes = addrs + [a + 1 for a in addrs] + [0, addrs[-1] + 1000]
    for addr in probes:
        assert table.lookup(addr) == linetable_lookup_reference(table, addr)
    table.add(addrs[-1] + 2000, "extra.bc", 1)  # invalidates the cache
    assert table.lookup(addrs[-1] + 2001) == ("extra.bc", 1)


def test_validate_execution_reports_skipped_reference(baseline, monkeypatch):
    exe, _, _ = baseline
    import repro.uarch

    def explode(*args, **kwargs):
        raise RuntimeError("reference fault")

    monkeypatch.setattr(repro.uarch, "run_binary", explode)
    from repro.core.diagnostics import Diagnostics

    diags = Diagnostics()
    assert validate_execution(exe, exe, diagnostics=diags) == []
    rendered = "\n".join(d.render() for d in diags)
    assert "execution gate skipped" in rendered
    assert "reference fault" in rendered


def test_passthrough_failure_is_reported(baseline, monkeypatch):
    """The last degradation rung must *say* when it could not rebuild
    its reporting state (this used to be a silent ``except: pass``)."""
    from repro.core import rewriter

    exe, _, _ = baseline

    def explode(context):
        raise RuntimeError("discovery exploded")

    monkeypatch.setattr(rewriter, "discover_functions", explode)
    result = rewriter._passthrough_result(exe, None, BoltOptions())
    assert result.degraded == "passthrough"
    assert result.binary is exe
    rendered = "\n".join(d.render() for d in result.diagnostics)
    assert "could not rebuild reporting state" in rendered
    assert "discovery exploded" in rendered
