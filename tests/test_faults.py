"""Fault-injection robustness: every corruption in ``repro.faults``
must go through ``optimize_binary`` without aborting the run, demote
(or drop) only the corrupted inputs, and leave the rewritten binary
executing identically on the uarch simulator.
"""

import pytest

from repro.core import BoltOptions, StrictModeError, optimize_binary
from repro.faults import (
    BINARY_FAULTS,
    PROFILE_FAULTS,
    inject_binary_fault,
    inject_profile_fault,
    unexecuted_functions,
)
from repro.harness import build_workload, measure, sample_profile
from repro.profiling import SamplingConfig
from repro.uarch import run_binary
from repro.workloads import WorkloadSpec, generate_workload

pytestmark = pytest.mark.faults

MAX_INSNS = 20_000_000


@pytest.fixture(scope="module")
def rig():
    """One workload, built + profiled once for the whole module."""
    spec = WorkloadSpec("faultrig", seed=7, modules=3, workers_per_module=5,
                        leaves_per_module=3, iterations=60,
                        switch_funcs_per_module=1, fptr_funcs_per_module=1,
                        cold_modulus=17)
    workload = generate_workload(spec)
    built = build_workload(workload)
    baseline = measure(built, max_instructions=MAX_INSNS)
    profile, _ = sample_profile(built, sampling=SamplingConfig(period=83),
                                max_instructions=MAX_INSNS)
    cold = unexecuted_functions(built.exe, inputs=workload.inputs,
                                max_instructions=MAX_INSNS)
    return {
        "workload": workload,
        "exe": built.exe,
        "profile": profile,
        "output": baseline.output,
        "cold": cold,
    }


def _quarter(names, exe):
    """~25% of all functions, all drawn from the never-executed set."""
    total = len([s for s in exe.functions() if s.size > 0])
    want = max(1, total // 4)
    return names[:want]


def _undecodable(binary, names):
    """The subset of ``names`` whose bodies no longer disassemble."""
    from repro.isa import decode_stream

    bad = []
    for sym in binary.functions():
        if sym.link_name() not in set(names) or sym.size == 0:
            continue
        section = binary.section_at(sym.value)
        if section is None:
            bad.append(sym.link_name())
            continue
        start = sym.value - section.addr
        try:
            decode_stream(section.data, start, start + sym.size,
                          base_address=sym.value)
        except Exception:
            bad.append(sym.link_name())
    return bad


# Faults that leave every *executed* byte intact when targeted at
# never-executed functions — output equivalence vs the clean baseline
# is assertable.  truncate-section is different: the cut removes every
# function past the lowest victim, executed or not, so the corrupted
# input itself cannot reproduce the baseline; it gets its own test.
EQUIV_FAULTS = tuple(k for k in BINARY_FAULTS if k != "truncate-section")


@pytest.mark.parametrize("kind", EQUIV_FAULTS)
def test_binary_fault_contained(rig, kind):
    targets = _quarter(rig["cold"], rig["exe"])
    assert targets, "workload must have cold functions to corrupt"
    corrupted, affected = inject_binary_fault(rig["exe"], kind,
                                              targets=targets)
    assert affected

    result = optimize_binary(corrupted, rig["profile"], BoltOptions())

    # The run completed and did not silently eat the corruption.  Of
    # the corrupted functions, the *detectably* broken ones (body no
    # longer decodes — a shrunk symbol size can coincidentally land on
    # an instruction boundary and be indistinguishable from valid
    # code) must be conservatively skipped.
    funcs = result.context.functions
    if kind in ("garbage-text", "wrong-symbol-size"):
        expect = _undecodable(corrupted, affected)
        if kind == "garbage-text":
            assert set(expect) == set(affected)
        demoted = {name for name, f in funcs.items() if not f.is_simple}
        missing = {name for name in expect if name not in funcs}
        assert all(name in demoted or name in missing for name in expect), (
            f"corrupted functions not conservatively skipped: "
            f"{[n for n in expect if n not in demoted | missing]}")

    # Only corruption-related functions lost their optimized status:
    # everything else still came through as simple.
    clean_result = optimize_binary(rig["exe"], rig["profile"], BoltOptions())
    clean_simple = {name for name, f in clean_result.context.functions.items()
                    if f.is_simple}
    over_demoted = {
        name for name in clean_simple - set(affected)
        if name in funcs and not funcs[name].is_simple}
    assert not over_demoted, f"healthy functions demoted: {over_demoted}"

    # Output equivalence: corruption only touched never-executed
    # functions, so the rewritten binary must reproduce the baseline.
    cpu = run_binary(result.binary, inputs=rig["workload"].inputs,
                     max_instructions=MAX_INSNS)
    assert cpu.output == rig["output"]


def test_truncated_section_contained(rig):
    """A truncated .text destroys every function past the cut; the
    pipeline must still finish and demote or drop everything damaged —
    it cannot repair the binary, only avoid making it worse."""
    targets = _quarter(rig["cold"], rig["exe"])
    corrupted, affected = inject_binary_fault(rig["exe"], "truncate-section",
                                              targets=targets)
    assert affected

    result = optimize_binary(corrupted, rig["profile"], BoltOptions())
    assert result.binary is not None
    funcs = result.context.functions
    demoted = {name for name, f in funcs.items() if not f.is_simple}
    missing = {name for name in affected if name not in funcs}
    assert all(name in demoted or name in missing for name in affected), (
        f"truncated functions not conservatively skipped: "
        f"{[n for n in affected if n not in demoted | missing]}")


@pytest.mark.parametrize("kind", PROFILE_FAULTS)
def test_profile_fault_contained(rig, kind):
    bad_profile = inject_profile_fault(rig["profile"], kind, fraction=0.5)

    result = optimize_binary(rig["exe"], bad_profile, BoltOptions())

    # The pipeline survived and still emitted a correct binary.
    cpu = run_binary(result.binary, inputs=rig["workload"].inputs,
                     max_instructions=MAX_INSNS)
    assert cpu.output == rig["output"]


def test_quarter_garbage_end_to_end(rig):
    """The acceptance scenario: 25% of functions fault-injected, the
    pipeline completes, demotes only the corrupted functions, and the
    output is execution-identical."""
    targets = _quarter(rig["cold"], rig["exe"])
    corrupted, affected = inject_binary_fault(rig["exe"], "garbage-text",
                                              targets=targets)
    result = optimize_binary(corrupted, rig["profile"], BoltOptions())
    funcs = result.context.functions
    for name in affected:
        assert not funcs[name].is_simple
    diags = result.diagnostics
    assert result.binary is not None
    cpu = run_binary(result.binary, inputs=rig["workload"].inputs,
                     max_instructions=MAX_INSNS)
    assert cpu.output == rig["output"]
    assert cpu.exit_code == 0
    # Summary reports what happened instead of hiding it.
    assert "conservatively skipped" in result.summary()
    assert diags is not None


def test_strict_mode_raises_on_fault(rig):
    targets = _quarter(rig["cold"], rig["exe"])
    corrupted, _ = inject_binary_fault(rig["exe"], "garbage-text",
                                       targets=targets)
    bad_profile = inject_profile_fault(rig["profile"], "negative-counts")
    with pytest.raises(StrictModeError):
        optimize_binary(corrupted, bad_profile,
                        BoltOptions(strict=True))


def test_pass_crash_containment(rig, monkeypatch):
    """A pass blowing up on one function demotes that function only."""
    from repro.core.passes.reorder_bbs import ReorderBasicBlocks

    victim = {}
    original = ReorderBasicBlocks.run_on_function

    def exploding(self, context, func):
        if not victim:
            victim["name"] = func.name
        if func.name == victim["name"]:
            raise RuntimeError("synthetic pass bug")
        return original(self, context, func)

    monkeypatch.setattr(ReorderBasicBlocks, "run_on_function", exploding)
    result = optimize_binary(rig["exe"], rig["profile"], BoltOptions())
    func = result.context.functions[victim["name"]]
    assert not func.is_simple
    assert "contained failure" in func.simple_violation
    assert any("synthetic pass bug" in d.message
               for d in result.diagnostics.warnings)
    cpu = run_binary(result.binary, inputs=rig["workload"].inputs,
                     max_instructions=MAX_INSNS)
    assert cpu.output == rig["output"]


def test_whole_pass_crash_containment(rig, monkeypatch):
    """A context-level pass failing outright is skipped, not fatal."""
    from repro.core.passes.reorder_functions import ReorderFunctions

    def exploding(self, context):
        raise RuntimeError("synthetic whole-pass bug")

    monkeypatch.setattr(ReorderFunctions, "run", exploding)
    result = optimize_binary(rig["exe"], rig["profile"], BoltOptions())
    assert any("synthetic whole-pass bug" in d.message
               for d in result.diagnostics.errors)
    cpu = run_binary(result.binary, inputs=rig["workload"].inputs,
                     max_instructions=MAX_INSNS)
    assert cpu.output == rig["output"]


def test_verify_cfg_demotes_corrupted_function(rig, monkeypatch):
    """verify_cfg catches a pass that corrupts a CFG without raising."""
    from repro.core.passes.peepholes import Peepholes

    victim = {}
    original = Peepholes.run_on_function

    def corrupting(self, context, func):
        if not victim and func.blocks:
            victim["name"] = func.name
            block = next(iter(func.blocks.values()))
            block.successors.append(".Lnonexistent")
            return {}
        return original(self, context, func)

    monkeypatch.setattr(Peepholes, "run_on_function", corrupting)
    result = optimize_binary(rig["exe"], rig["profile"],
                             BoltOptions(verify_cfg=True))
    func = result.context.functions[victim["name"]]
    assert not func.is_simple
    assert any("CFG invariants violated" in d.message
               for d in result.diagnostics.warnings)
    cpu = run_binary(result.binary, inputs=rig["workload"].inputs,
                     max_instructions=MAX_INSNS)
    assert cpu.output == rig["output"]


# ---------------------------------------------------------------------------
# CLI smoke: end-to-end on a corrupted binary, tolerant and strict.
# ---------------------------------------------------------------------------


CLI_SRC = """
func helper(x) {
  if (x % 3 == 0) { return x * 2; }
  return x + 1;
}
func spare(x) {
  var y = x * 3;
  if (y % 2 == 0) { return y - 1; }
  return y + 7;
}
func main() {
  var i = 0;
  var acc = 0;
  while (i < 50) { acc = acc + helper(i); i = i + 1; }
  out acc;
  return 0;
}
"""


@pytest.fixture()
def cli_rig(tmp_path, capsys):
    from repro.belf import read_binary, write_binary
    from repro.cli import main

    src = tmp_path / "app.bc"
    src.write_text(CLI_SRC)
    exe = tmp_path / "app.belf"
    fdata = tmp_path / "app.fdata"
    assert main(["build", str(src), "-o", str(exe)]) == 0
    assert main(["profile", str(exe), "-o", str(fdata),
                 "--period", "51"]) == 0
    binary = read_binary(exe.read_bytes())
    corrupted, affected = inject_binary_fault(
        binary, "garbage-text", targets=["spare"])
    assert affected == ["spare"]
    bad = tmp_path / "app.bad.belf"
    bad.write_bytes(write_binary(corrupted))
    capsys.readouterr()
    return tmp_path, bad, fdata


def test_cli_bolt_tolerant_on_corrupted_binary(cli_rig, capsys):
    from repro.cli import main

    tmp_path, bad, fdata = cli_rig
    out = tmp_path / "app.bolt.belf"
    assert main(["bolt", str(bad), "-p", str(fdata),
                 "-o", str(out), "--tolerant"]) == 0
    captured = capsys.readouterr()
    assert "BOLT-WARNING" in captured.err
    assert out.exists()
    # The tolerant output still runs.
    assert main(["run", str(out)]) == 0


def test_cli_bolt_strict_on_corrupted_binary(cli_rig, capsys):
    from repro.cli import main

    tmp_path, bad, fdata = cli_rig
    out = tmp_path / "app.strict.belf"
    rc = main(["bolt", str(bad), "-p", str(fdata),
               "-o", str(out), "--strict"])
    captured = capsys.readouterr()
    assert rc != 0
    assert "BOLT-ERROR" in captured.err
    assert "Traceback" not in captured.err


def test_cli_malformed_binary_single_error_line(tmp_path, capsys):
    from repro.cli import main

    junk = tmp_path / "junk.belf"
    junk.write_bytes(b"\x00" * 64)
    out = tmp_path / "out.belf"
    rc = main(["bolt", str(junk), "-o", str(out)])
    captured = capsys.readouterr()
    assert rc != 0
    err_lines = [l for l in captured.err.splitlines() if l.strip()]
    assert len(err_lines) == 1
    assert err_lines[0].startswith("BOLT-ERROR:")


def test_cli_malformed_profile_single_error_line(cli_rig, tmp_path, capsys):
    from repro.cli import main

    rig_path, bad, _ = cli_rig
    garbage = rig_path / "garbage.fdata"
    garbage.write_text("1 main zz 1 main 0 broken\n")
    out = rig_path / "out.belf"
    rc = main(["bolt", str(bad), "-p", str(garbage), "-o", str(out)])
    captured = capsys.readouterr()
    assert rc != 0
    err_lines = [l for l in captured.err.splitlines() if l.strip()]
    assert len(err_lines) == 1
    assert err_lines[0].startswith("BOLT-ERROR:")
