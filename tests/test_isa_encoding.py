"""Unit + property tests for the BX86 encoder/decoder round trip."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    Instruction,
    Op,
    CondCode,
    encode,
    decode,
    decode_stream,
    DecodeError,
    instruction_size,
    negate_cc,
    RAX,
    RBX,
    RCX,
    RSP,
)
from repro.isa.encoding import EncodeError, branch_offset_fits_short
from repro.isa.opcodes import OPERAND_FORMATS, format_size


def roundtrip(insn, address=0x1000):
    data = encode(insn, address)
    assert len(data) == instruction_size(insn)
    decoded = decode(data, 0, address)
    assert decoded.op == insn.op
    assert decoded.size == len(data)
    return decoded


def test_nop_sizes():
    assert instruction_size(Instruction(Op.NOP)) == 1
    assert instruction_size(Instruction(Op.NOPN, imm=7)) == 7
    assert instruction_size(Instruction(Op.RET)) == 1
    assert instruction_size(Instruction(Op.REPZ_RET)) == 2


def test_branch_sizes_match_paper():
    """Paper section 3.1: 2-byte short jcc vs 6-byte long jcc."""
    short = Instruction(Op.JCC_SHORT, cc=CondCode.NE, target=0x1010)
    long_ = Instruction(Op.JCC_LONG, cc=CondCode.NE, target=0x1010)
    assert instruction_size(short) == 2
    assert instruction_size(long_) == 6
    assert instruction_size(Instruction(Op.JMP_SHORT, target=0)) == 2
    assert instruction_size(Instruction(Op.JMP_NEAR, target=0)) == 5
    assert instruction_size(Instruction(Op.CALL, target=0)) == 5


def test_mov_rr_roundtrip():
    decoded = roundtrip(Instruction(Op.MOV_RR, (RAX, RBX)))
    assert decoded.regs == (RAX, RBX)


def test_mov_ri32_negative():
    decoded = roundtrip(Instruction(Op.MOV_RI32, (RCX,), imm=-12345))
    assert decoded.imm == -12345


def test_mov_ri64_roundtrip():
    decoded = roundtrip(Instruction(Op.MOV_RI64, (RAX,), imm=0x123456789ABCDEF))
    assert decoded.imm == 0x123456789ABCDEF


def test_load_store_disp():
    decoded = roundtrip(Instruction(Op.LOAD, (RAX, RSP), disp=-64))
    assert decoded.regs == (RAX, RSP)
    assert decoded.disp == -64
    decoded = roundtrip(Instruction(Op.STORE, (RSP, RBX), disp=1024))
    assert decoded.disp == 1024


def test_loadidx_roundtrip():
    decoded = roundtrip(Instruction(Op.LOADIDX, (RAX, RBX, RCX), disp=16))
    assert decoded.regs == (RAX, RBX, RCX)
    assert decoded.disp == 16


def test_abs_ops():
    decoded = roundtrip(Instruction(Op.LOAD_ABS, (RAX,), addr=0x20000))
    assert decoded.addr == 0x20000
    decoded = roundtrip(Instruction(Op.CALL_MEM, addr=0x30000))
    assert decoded.addr == 0x30000
    assert decoded.size == 6
    decoded = roundtrip(Instruction(Op.JMP_MEM, addr=0x30008))
    assert decoded.size == 6


def test_branch_target_resolution():
    insn = Instruction(Op.JMP_NEAR, target=0x2000)
    decoded = roundtrip(insn, address=0x1000)
    assert decoded.target == 0x2000


def test_short_branch_backward():
    insn = Instruction(Op.JMP_SHORT, target=0x0FF0)
    decoded = roundtrip(insn, address=0x1000)
    assert decoded.target == 0x0FF0


def test_jcc_roundtrip_all_ccs():
    for cc in CondCode:
        decoded = roundtrip(Instruction(Op.JCC_SHORT, cc=cc, target=0x1010))
        assert decoded.cc == cc
        decoded = roundtrip(Instruction(Op.JCC_LONG, cc=cc, target=0x4000))
        assert decoded.cc == cc


def test_call_roundtrip():
    decoded = roundtrip(Instruction(Op.CALL, target=0x5000), address=0x1000)
    assert decoded.target == 0x5000
    assert decoded.is_call


def test_short_branch_out_of_range_raises():
    insn = Instruction(Op.JMP_SHORT, target=0x9000)
    with pytest.raises(EncodeError):
        encode(insn, 0x1000)


def test_branch_without_address_raises():
    with pytest.raises(EncodeError):
        encode(Instruction(Op.JMP_NEAR, target=0x2000))


def test_nopn_roundtrip():
    data = encode(Instruction(Op.NOPN, imm=9))
    assert len(data) == 9
    decoded = decode(data, 0, 0)
    assert decoded.op == Op.NOPN
    assert decoded.size == 9


def test_nopn_bad_length():
    with pytest.raises(EncodeError):
        encode(Instruction(Op.NOPN, imm=1))


def test_decode_invalid_opcode():
    with pytest.raises(DecodeError):
        decode(b"\xff", 0, 0)


def test_decode_truncated():
    data = encode(Instruction(Op.MOV_RI64, (RAX,), imm=1))
    with pytest.raises(DecodeError):
        decode(data[:5], 0, 0)


def test_decode_invalid_register():
    data = bytes([int(Op.PUSH), 200])
    with pytest.raises(DecodeError):
        decode(data, 0, 0)


def test_decode_stream():
    insns = [
        Instruction(Op.PUSH, (RBX,)),
        Instruction(Op.MOV_RI32, (RAX,), imm=5),
        Instruction(Op.RET),
    ]
    blob = b""
    addr = 0x100
    for insn in insns:
        blob += encode(insn, addr)
        addr += instruction_size(insn)
    decoded = decode_stream(blob, base_address=0x100)
    assert [d.op for d in decoded] == [Op.PUSH, Op.MOV_RI32, Op.RET]
    assert decoded[1].address == 0x102


def test_decode_stream_straddle():
    blob = encode(Instruction(Op.MOV_RI32, (RAX,), imm=5))
    with pytest.raises(DecodeError):
        decode_stream(blob, end=3)


def test_negate_cc_involution():
    for cc in CondCode:
        assert negate_cc(negate_cc(cc)) == cc
        assert negate_cc(cc) != cc


def test_branch_offset_fits_short():
    insn = Instruction(Op.JMP_SHORT, target=0x1050)
    assert branch_offset_fits_short(insn, 0x1000)
    insn.target = 0x2000
    assert not branch_offset_fits_short(insn, 0x1000)


def test_classification():
    assert Instruction(Op.RET).is_return
    assert Instruction(Op.RET).is_terminator
    assert Instruction(Op.REPZ_RET).is_return
    assert Instruction(Op.JMP_REG, (RAX,)).is_indirect_branch
    assert Instruction(Op.JMP_REG, (RAX,)).is_terminator
    assert Instruction(Op.CALL_REG, (RAX,)).is_indirect
    assert not Instruction(Op.CALL, target=0).is_terminator
    assert Instruction(Op.JCC_SHORT, cc=CondCode.EQ).is_cond_branch
    assert not Instruction(Op.JCC_SHORT, cc=CondCode.EQ).is_terminator
    assert Instruction(Op.NOPN, imm=4).is_nop
    assert Instruction(Op.LOAD, (RAX, RBX)).reads_memory
    assert Instruction(Op.PUSH, (RAX,)).writes_memory


def test_annotations():
    insn = Instruction(Op.NOP)
    assert insn.get_annotation("x") is None
    insn.set_annotation("x", 42)
    assert insn.get_annotation("x") == 42
    clone = insn.copy()
    clone.set_annotation("x", 1)
    assert insn.get_annotation("x") == 42


def test_str_rendering():
    assert "jne" in str(Instruction(Op.JCC_SHORT, cc=CondCode.NE, target=0x10))
    assert "repz retq" == str(Instruction(Op.REPZ_RET))
    assert "callq" in str(Instruction(Op.CALL, target=0x10))
    text = str(Instruction(Op.LOAD, (RAX, RSP), disp=8))
    assert "%rsp" in text and "%rax" in text


# -- property-based -------------------------------------------------------

_REG = st.integers(min_value=0, max_value=15)


@given(dst=_REG, src=_REG)
def test_prop_rr_roundtrip(dst, src):
    for op in (Op.MOV_RR, Op.ADD_RR, Op.SUB_RR, Op.CMP_RR, Op.IMUL_RR, Op.XOR_RR):
        decoded = roundtrip(Instruction(op, (dst, src)))
        assert decoded.regs == (dst, src)


@given(reg=_REG, imm=st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_prop_ri_roundtrip(reg, imm):
    decoded = roundtrip(Instruction(Op.ADD_RI, (reg,), imm=imm))
    assert decoded.regs == (reg,) and decoded.imm == imm


@given(imm=st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_prop_imm64_roundtrip(imm):
    decoded = roundtrip(Instruction(Op.MOV_RI64, (RAX,), imm=imm))
    assert decoded.imm == imm


@given(
    addr=st.integers(min_value=0x1000, max_value=0x7FFFFFFF),
    rel=st.integers(min_value=-(2**31) // 2, max_value=2**31 // 2 - 1),
)
def test_prop_branch_roundtrip(addr, rel):
    target = addr + 5 + rel
    if not 0 <= target < 2**63:
        return
    decoded = roundtrip(Instruction(Op.JMP_NEAR, target=target), address=addr)
    assert decoded.target == target


@given(data=st.binary(min_size=0, max_size=16))
def test_prop_decode_never_crashes(data):
    """Arbitrary bytes either decode or raise DecodeError, never crash."""
    try:
        insn = decode(data, 0, 0x1000)
        assert insn.size >= 1
    except DecodeError:
        pass
