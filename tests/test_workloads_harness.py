"""Workload generator + harness integration tests."""

import pytest

from repro.compiler import BuildOptions
from repro.core import BoltOptions
from repro.harness import (
    build_workload,
    hfsort_link_order,
    measure,
    run_bolt,
    sample_profile,
    speedup,
    counter_reductions,
    fetch_heatmap,
    hot_footprint,
    render_heatmap,
)
from repro.lang import parse_module
from repro.lang.interp import Interpreter
from repro.profiling import SamplingConfig
from repro.workloads import PRESETS, generate_workload, make_workload


def test_generation_deterministic():
    wl1 = make_workload("mini")
    wl2 = make_workload("mini")
    assert wl1.sources == wl2.sources
    assert wl1.inputs == wl2.inputs
    wl3 = make_workload("mini", seed=99)
    assert wl3.sources != wl1.sources


def test_all_presets_generate_and_parse():
    for name, spec in PRESETS.items():
        workload = generate_workload(spec)
        assert workload.sources
        for mod_name, text in (workload.sources + workload.lib_sources
                               + workload.asm_sources):
            parse_module(text, mod_name)  # must not raise


def test_alt_inputs_differ():
    wl = make_workload("mini")
    assert set(wl.alt_inputs)  # at least one alternative mix
    for label, inputs in wl.alt_inputs.items():
        assert inputs != wl.inputs


@pytest.fixture(scope="module")
def mini():
    return make_workload("mini")


@pytest.fixture(scope="module")
def mini_built(mini):
    return build_workload(mini)


def test_workload_matches_interpreter(mini, mini_built):
    modules = [parse_module(t, n) for n, t in
               mini.sources + mini.lib_sources + mini.asm_sources]
    interp = Interpreter(modules, max_steps=50_000_000)
    interp.set_array("mainmod", "input", mini.inputs["mainmod::input"])
    interp.run("main")
    cpu = measure(mini_built)
    assert cpu.output == interp.output


def test_build_labels(mini):
    assert build_workload(mini).label == "O2"
    assert build_workload(mini, lto=True).label == "LTO"


def test_pgo_build_flow(mini):
    built = build_workload(mini, pgo=True)
    assert built.label == "PGO"
    cpu = measure(built)
    baseline = measure(build_workload(mini))
    assert cpu.output == baseline.output
    # PGO layout should not be slower than the plain build.
    assert cpu.counters.cycles <= baseline.counters.cycles * 1.05


def test_autofdo_build_flow(mini):
    built = build_workload(mini, autofdo=True)
    cpu = measure(built)
    assert cpu.output == measure(build_workload(mini)).output


def test_hfsort_link_flow(mini):
    built = build_workload(mini, hfsort_link="hfsort")
    cpu = measure(built)
    assert cpu.output == measure(build_workload(mini)).output
    # Hot functions moved to the front of .text.
    exe = built.exe
    main_sym = exe.get_symbol("main")
    assert main_sym is not None


def test_bolt_on_workload(mini, mini_built):
    base = measure(mini_built)
    profile, _ = sample_profile(mini_built)
    result = run_bolt(mini_built, profile)
    opt = measure(result.binary, inputs=mini.inputs)
    assert opt.output == base.output
    gain = speedup(base.counters.cycles, opt.counters.cycles)
    assert gain > 0


def test_bolt_alt_inputs_still_correct(mini, mini_built):
    """Optimize with the default training input, run on other mixes."""
    profile, _ = sample_profile(mini_built)
    result = run_bolt(mini_built, profile)
    for label, inputs in mini.alt_inputs.items():
        base = measure(mini_built.exe, inputs=inputs)
        opt = measure(result.binary, inputs=inputs)
        assert opt.output == base.output, label


def test_counter_reductions_shape(mini, mini_built):
    base = measure(mini_built)
    profile, _ = sample_profile(mini_built)
    opt = measure(run_bolt(mini_built, profile).binary, inputs=mini.inputs)
    reductions = counter_reductions(base.counters, opt.counters)
    assert set(reductions) == {"Branch", "D-Cache", "I-Cache", "I-TLB",
                               "D-TLB", "LLC"}


def test_heatmap(mini, mini_built):
    cpu = measure(mini_built, fetch_heat=True)
    matrix = fetch_heatmap(cpu, grid=16)
    assert matrix.shape == (16, 16)
    assert matrix.max() > 0
    footprint = hot_footprint(cpu)
    assert 0 < footprint <= mini_built.exe.text_size() + 4096
    art = render_heatmap(matrix)
    assert len(art.splitlines()) == 16


def test_heatmap_shrinks_after_bolt(mini, mini_built):
    """Figure 9: the footprint of the hot fetches shrinks after BOLT
    (NOP stripping + packing hot blocks together)."""
    base = measure(mini_built, fetch_heat=True)
    profile, _ = sample_profile(mini_built)
    result = run_bolt(mini_built, profile)
    opt = measure(result.binary, inputs=mini.inputs, fetch_heat=True)
    for coverage in (0.90, 0.99, 1.0):
        assert (hot_footprint(opt, coverage)
                < hot_footprint(base, coverage)), coverage


def test_asm_module_has_no_frame_info(mini_built):
    records = mini_built.exe.frame_records
    asm_funcs = [s for s in mini_built.exe.functions()
                 if s.name.startswith("asm_leaf")]
    if asm_funcs:  # mini has no asm module; hhvm does
        assert all(s.link_name() not in records for s in asm_funcs)


def test_hhvm_preset_has_asm_and_itails():
    wl = make_workload("hhvm", iterations=40)
    built = build_workload(wl)
    records = built.exe.frame_records
    asm_funcs = [s for s in built.exe.functions()
                 if s.name.startswith("asm_leaf")]
    assert asm_funcs
    assert all(s.link_name() not in records for s in asm_funcs)
    cpu = measure(built)
    assert cpu.output  # runs to completion
