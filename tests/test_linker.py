"""Linker tests: resolution, layout, PLT/GOT, ICF, emit-relocs."""

import pytest

from repro.belf import RelocType, SectionType, SymbolType
from repro.codegen import CodegenOptions, emit_object, select_function
from repro.compiler import BuildOptions, compile_program
from repro.ir import build_module
from repro.lang import parse_module
from repro.linker import link, LinkError, BUILTINS
from repro.uarch import run_binary


def objects_for(*sources, options=None):
    result = compile_program(list(sources), options or BuildOptions())
    return result.objects


def test_basic_link_and_run():
    objs = objects_for(("m", "func main() { out 7; return 0; }"))
    exe = link(objs)
    assert exe.is_executable
    assert exe.entry == exe.get_symbol("main").value
    cpu = run_binary(exe)
    assert cpu.output == [7]


def test_cross_object_call_resolution():
    objs = objects_for(
        ("a", "func main() { out helper(40); return 0; }"),
        ("b", "func helper(x) { return x + 2; }"),
    )
    cpu = run_binary(link(objs))
    assert cpu.output == [42]


def test_undefined_symbol():
    objs = objects_for(("a", "func main() { return nope(); }"))
    with pytest.raises(LinkError):
        link(objs)


def test_duplicate_global_function():
    objs = objects_for(
        ("a", "func f() { return 1; } func main() { return f(); }"),
        ("b", "func f() { return 2; }"),
    )
    with pytest.raises(LinkError):
        link(objs)


def test_static_functions_do_not_collide():
    objs = objects_for(
        ("a", "static func f() { return 1; } func main() { return f(); }"),
        ("b", "static func f() { return 2; } func g() { return f(); }"),
    )
    cpu = run_binary(link(objs))
    assert cpu.exit_code == 1


def test_undefined_entry():
    objs = objects_for(("a", "func f() { return 1; }"))
    with pytest.raises(LinkError):
        link(objs, entry="main")


def test_section_layout():
    objs = objects_for(("m", """
var g = 1;
const K = 2;
array z[8];
func main() { return g + K + z[0]; }
"""))
    exe = link(objs)
    text = exe.get_section(".text")
    rodata = exe.get_section(".rodata")
    data = exe.get_section(".data")
    bss = exe.get_section(".bss")
    assert text.addr < rodata.addr < data.addr < bss.addr
    assert bss.type == SectionType.NOBITS
    # Page-aligned data sections; no overlaps.
    sections = sorted((s for s in exe.sections.values() if s.is_alloc),
                      key=lambda s: s.addr)
    for first, second in zip(sections, sections[1:]):
        assert first.end <= second.addr


def test_plt_for_builtins():
    objs = objects_for(("m", """
func main() {
  try { throw 3; } catch (e) { out e; }
  return 0;
}
"""))
    exe = link(objs)
    plt = exe.get_section(".plt")
    got = exe.get_section(".got")
    assert plt.size == 6  # one stub (for __throw)
    assert exe.read_word(got.addr) == BUILTINS["__throw"]
    cpu = run_binary(exe)
    assert cpu.output == [3]


def test_pic_library_goes_through_plt():
    app = objects_for(("m", "func main() { out util(5); return 0; }"))
    libs = objects_for(("lib", "func util(x) { return x * 9; }"))
    exe = link(app, libs=libs)
    # Two PLT entries: __throw (always) + util.
    plt = exe.get_section(".plt")
    assert plt.size == 12
    cpu = run_binary(exe)
    assert cpu.output == [45]


def test_emit_relocs_retained_and_rebased():
    objs = objects_for(
        ("a", "func main() { out helper(1); return 0; }"),
        ("b", "func helper(x) { return x; }"),
    )
    exe = link(objs, emit_relocs=True)
    assert exe.emit_relocs
    text_relocs = [r for r in exe.relocations if r.section == ".text"]
    assert any(r.symbol == "helper" and r.type == RelocType.PC32
               for r in text_relocs)
    got_relocs = [r for r in exe.relocations if r.section == ".got"]
    assert any(r.symbol == "__throw" for r in got_relocs)
    # No relocations without the flag.
    exe2 = link(objs, emit_relocs=False)
    assert not exe2.relocations


def test_jump_table_relocs_in_rodata():
    objs = objects_for(("m", """
func main() {
  var i = 0;
  var acc = 0;
  while (i < 6) {
    switch (i) {
      case 0: { acc = acc + 1; } case 1: { acc = acc + 2; }
      case 2: { acc = acc + 3; } case 3: { acc = acc + 4; }
    }
    i = i + 1;
  }
  out acc;
  return 0;
}
"""))
    exe = link(objs, emit_relocs=True)
    ro_relocs = [r for r in exe.relocations if r.section == ".rodata"]
    assert len(ro_relocs) >= 4
    cpu = run_binary(exe)
    assert cpu.output == [10]


def test_function_order_applied():
    objs = objects_for(
        ("a", "func main() { return f1() + f2(); }\n"
              "func f1() { return 1; }\nfunc f2() { return 2; }"),
    )
    default = link(objs)
    reordered = link(objs, function_order=["f2", "f1", "main"])
    def addr(exe, name):
        return exe.get_symbol(name).value
    assert addr(default, "main") < addr(default, "f1") < addr(default, "f2")
    assert addr(reordered, "f2") < addr(reordered, "f1") < addr(reordered, "main")
    assert run_binary(reordered).exit_code == 3


def test_linker_icf_folds_identical():
    objs = objects_for(
        ("a", "func dup1(x) { return x * 77 + 1; }\n"
              "func main() { out dup1(1); out dup2(1); return 0; }"),
        ("b", "func dup2(x) { return x * 77 + 1; }"),
    )
    exe_plain = link(objs)
    objs = objects_for(
        ("a", "func dup1(x) { return x * 77 + 1; }\n"
              "func main() { out dup1(1); out dup2(1); return 0; }"),
        ("b", "func dup2(x) { return x * 77 + 1; }"),
    )
    exe_icf = link(objs, icf=True)
    assert exe_icf.text_size() < exe_plain.text_size()
    assert (exe_icf.get_symbol("dup1").value
            == exe_icf.get_symbol("dup2").value)
    cpu = run_binary(exe_icf)
    assert cpu.output == [78, 78]


def test_linker_icf_does_not_fold_different_callees():
    objs = objects_for(
        ("a", "func t1() { return 1; }\nfunc t2() { return 2; }\n"
              "func c1() { return t1(); }\nfunc c2() { return t2(); }\n"
              "func main() { out c1(); out c2(); return 0; }"),
    )
    exe = link(objs, icf=True)
    assert exe.get_symbol("c1").value != exe.get_symbol("c2").value
    assert run_binary(exe).output == [1, 2]


def test_line_table_merged():
    objs = objects_for(("m", "func main() { out 1; return 0; }"))
    exe = link(objs)
    assert exe.line_table is not None and len(exe.line_table) > 0
    main = exe.get_symbol("main")
    assert exe.line_table.lookup(main.value) is not None


def test_frame_records_merged():
    objs = objects_for(("m", """
func f(x) {
  try { throw x; } catch (e) { return e; }
  return 0;
}
func main() { return f(1); }
"""))
    exe = link(objs)
    assert "f" in exe.frame_records
    assert exe.frame_records["f"].callsites
