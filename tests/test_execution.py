"""Differential semantics tests: compiled binaries must produce the
same output stream as the reference interpreter, at every optimization
level, with and without LTO/tail calls, and after BOLT."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import CodegenOptions
from repro.compiler import BuildOptions, build_executable
from repro.core import optimize_binary, BoltOptions
from repro.lang import parse_module
from repro.lang.interp import Interpreter, BCError
from repro.uarch import run_binary, MachineFault


def reference_output(sources):
    interp = Interpreter([parse_module(t, n) for n, t in sources])
    interp.run("main")
    return interp.output


def compiled_output(sources, options=None, bolt=False):
    exe, _ = build_executable(sources, options, emit_relocs=bolt)
    if bolt:
        exe = optimize_binary(exe, None, BoltOptions()).binary
    cpu = run_binary(exe)
    return cpu.output


def check_all_configs(text, extra_modules=()):
    sources = [("t", text)] + [(f"x{i}", m) for i, m in enumerate(extra_modules)]
    expected = reference_output(sources)
    configs = [
        BuildOptions(opt_level=0),
        BuildOptions(opt_level=2),
        BuildOptions(opt_level=2, lto=True),
        BuildOptions(opt_level=2, codegen=CodegenOptions(tail_calls=False)),
        BuildOptions(opt_level=2, codegen=CodegenOptions(
            repz_ret=False, align_loops=False, naive_param_homing=False)),
    ]
    for options in configs:
        got = compiled_output(sources, options)
        assert got == expected, f"mismatch with {options.__dict__}: " \
                                f"{got} != {expected}"
    assert compiled_output(sources, BuildOptions(), bolt=True) == expected
    return expected


# -- targeted semantics -------------------------------------------------------


def test_arith_matrix():
    check_all_configs("""
func main() {
  out 17 + 25; out 17 - 25; out 17 * -25;
  out 170 / 25; out -170 / 25; out 170 % 26; out -170 % 26;
  out 17 & 12; out 17 | 12; out 17 ^ 12;
  out 3 << 5; out -96 >> 3;
  out 5 > 3; out 5 < 3; out 5 == 5; out 5 != 5;
  out 5 >= 5; out 4 <= 3;
  out !0; out !7; out -(-9);
  return 0;
}
""")


def test_runtime_values_not_folded():
    # Feed values through an array so the compiler cannot constant-fold.
    check_all_configs("""
array v[4] = {17, -25, 3, 0};
func main() {
  out v[0] + v[1]; out v[0] * v[1];
  out v[0] / v[2]; out v[1] % v[2];
  out v[0] > v[1]; out (v[0] << 2) >> 1;
  out v[1] >> 1;
  out !v[3]; out !v[0];
  return 0;
}
""")


def test_control_flow():
    check_all_configs("""
func main() {
  var i = 0;
  var s = 0;
  while (i < 20) {
    if (i % 3 == 0 && i % 2 == 0) { s = s + 100; }
    else { if (i % 5 == 1 || i > 15) { s = s + 10; } else { s = s + 1; } }
    i = i + 1;
  }
  out s;
  var j = 0;
  while (1) {
    j = j + 1;
    if (j % 2 == 0) { continue; }
    if (j > 7) { break; }
    s = s + j;
  }
  out s;
  return 0;
}
""")


def test_switch_semantics():
    check_all_configs("""
func pick(x) {
  switch (x) {
    case 0: { return 100; }
    case 1: { return 200; }
    case 2: { return 300; }
    case 3: { return 400; }
    case 5: { return 600; }
    default: { return -1; }
  }
}
func sparse(x) {
  switch (x) { case 10: { return 1; } case 5000: { return 2; } }
  return 3;
}
func main() {
  var i = -2;
  while (i < 8) { out pick(i); i = i + 1; }
  out sparse(10); out sparse(5000); out sparse(0);
  return 0;
}
""")


def test_calls_and_recursion():
    check_all_configs("""
func fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
func apply2(f, x) { return f(f(x)); }
func inc(x) { return x + 1; }
func main() {
  out fib(12);
  out apply2(&inc, 5);
  return 0;
}
""")


def test_exceptions_through_frames():
    check_all_configs("""
func thrower(x) {
  if (x == 3) { throw 333; }
  return x;
}
func middle(x) {
  var local = x * 2;
  return thrower(x) + local;
}
func main() {
  var i = 0;
  var acc = 0;
  while (i < 6) {
    try { acc = acc + middle(i); }
    catch (e) { acc = acc + e; }
    i = i + 1;
  }
  out acc;
  return 0;
}
""")


def test_nested_try():
    check_all_configs("""
func f(x) {
  try {
    try {
      if (x == 1) { throw 10; }
      if (x == 2) { throw 20; }
      return x;
    } catch (inner) {
      if (inner == 10) { return 100; }
      throw inner + 1;
    }
  } catch (outer) {
    return outer;
  }
}
func main() {
  out f(0); out f(1); out f(2); out f(3);
  return 0;
}
""")


def test_rethrow_to_caller():
    check_all_configs("""
func inner(x) {
  try { throw x; } catch (e) { throw e * 2; }
}
func main() {
  try { inner(21); } catch (e) { out e; }
  return 0;
}
""")


def test_globals_cross_function():
    check_all_configs("""
var counter = 0;
array log[8];
func bump(x) {
  counter = counter + x;
  log[counter % 8] = counter;
  return counter;
}
func main() {
  var i = 0;
  while (i < 10) { bump(i); i = i + 1; }
  out counter;
  out log[counter % 8];
  out log[3];
  return 0;
}
""")


def test_cross_module_behaviour():
    check_all_configs(
        """
func main() {
  out api_a(5);
  out api_b(5);
  out shared(7);
  return 0;
}
""",
        extra_modules=[
            """
static func helper(x) { return x * 10; }
func api_a(x) { return helper(x) + 1; }
func shared(x) { return x + 1000; }
""",
            """
static func helper(x) { return x * 20; }
func api_b(x) { return helper(x) + 2; }
""",
        ],
    )


def test_function_pointer_table():
    check_all_configs("""
var fp = 0;
func h1(x) { return x + 1; }
func h2(x) { return x * 2; }
func h3(x) { return x - 3; }
func main() {
  var i = 0;
  var acc = 0;
  while (i < 9) {
    if (i % 3 == 0) { fp = &h1; }
    if (i % 3 == 1) { fp = &h2; }
    if (i % 3 == 2) { fp = &h3; }
    var f = fp;
    acc = acc + f(i);
    i = i + 1;
  }
  out acc;
  return 0;
}
""")


def test_division_by_zero_faults():
    sources = [("t", "array z[2]; func main() { return 5 / z[0]; }")]
    exe, _ = build_executable(sources)
    with pytest.raises(MachineFault):
        run_binary(exe)
    with pytest.raises(BCError):
        reference_output(sources)


def test_uncaught_exception_faults():
    sources = [("t", "func main() { throw 42; }")]
    exe, _ = build_executable(sources)
    with pytest.raises(MachineFault):
        run_binary(exe)


def test_deep_expression_pressure():
    check_all_configs("""
array v[8] = {1, 2, 3, 4, 5, 6, 7};
func main() {
  out ((v[0] + v[1]) * (v[2] + v[3])) + ((v[4] + v[5]) * (v[6] + v[0]))
      + ((v[1] * v[2]) + (v[3] * v[4])) * ((v[5] + v[6]) * (v[0] + v[2]));
  return 0;
}
""")


def test_many_locals_promotion():
    check_all_configs("""
func main() {
  var a = 1; var b = 2; var c = 3; var d = 4; var e = 5;
  var f = 6; var g = 7; var h = 8;
  var i = 0;
  while (i < 5) {
    a = a + b; b = b + c; c = c + d; d = d + e;
    e = e + f; f = f + g; g = g + h; h = h + a;
    i = i + 1;
  }
  out a + b + c + d + e + f + g + h;
  return 0;
}
""")


# -- property-based: random programs --------------------------------------------

_INT = st.integers(min_value=-100, max_value=100)


@st.composite
def _expr(draw, depth=0, vars_=("a", "b")):
    if depth > 2:
        choice = draw(st.integers(0, 1))
    else:
        choice = draw(st.integers(0, 3))
    if choice == 0:
        return str(draw(_INT))
    if choice == 1:
        return draw(st.sampled_from(vars_))
    if choice == 2:
        op = draw(st.sampled_from(("+", "-", "*", "&", "|", "^", "<<",
                                   ">>", "<", ">", "==", "!=")))
        left = draw(_expr(depth=depth + 1, vars_=vars_))
        right = draw(_expr(depth=depth + 1, vars_=vars_))
        if op in ("<<", ">>"):
            right = str(draw(st.integers(0, 8)))
        return f"({left} {op} {right})"
    operand = draw(_expr(depth=depth + 1, vars_=vars_))
    return f"(!{operand})" if draw(st.booleans()) else f"(-{operand})"


@st.composite
def _program(draw):
    n_stmts = draw(st.integers(1, 5))
    lines = ["func helper(a, b) {",
             f"  return {draw(_expr())};",
             "}",
             "func main() {",
             "  var a = 3; var b = -7;"]
    for i in range(n_stmts):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            lines.append(f"  a = {draw(_expr())};")
        elif kind == 1:
            lines.append(f"  if ({draw(_expr())}) {{ b = {draw(_expr())}; }}"
                         f" else {{ b = {draw(_expr())}; }}")
        elif kind == 2:
            lines.append(f"  a = helper({draw(_expr())}, b);")
        else:
            lines.append(f"  out {draw(_expr())};")
    lines.append("  out a; out b;")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


@settings(max_examples=25, deadline=None)
@given(text=_program())
def test_prop_compiled_matches_interpreter(text):
    sources = [("t", text)]
    expected = reference_output(sources)
    assert compiled_output(sources, BuildOptions(opt_level=2)) == expected
    assert compiled_output(sources, BuildOptions(opt_level=0)) == expected


def test_for_loops_all_configs():
    check_all_configs("""
array grid[16];
func main() {
  var acc = 0;
  for (var i = 0; i < 12; i += 1) {
    for (var j = i; j > 0; j -= 2) {
      acc += j;
      grid[i + j] ^= acc;
      if (acc % 7 == 0) { continue; }
      if (acc > 200) { break; }
    }
  }
  out acc;
  for (var k = 0; k < 16; k += 1) { out grid[k]; }
  return 0;
}
""")
