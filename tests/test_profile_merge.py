"""Property-based pins on the merge-fdata algebra.

The fleet aggregation contract (DESIGN.md section 10): shard merge is
commutative and associative, a singleton merge is exactly the normal
form, weight 1 is an identity, shard arrival order cannot change the
merged ``.fdata`` byte-for-byte, and the parallel parse path is
byte-identical to the serial one.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.profiling import (
    BinaryProfile,
    aggregate_shards,
    merge_profiles,
    normalize_profile,
    scale_profile,
    write_fdata,
)

pytestmark = pytest.mark.aggregate

# A small name pool (one with an embedded space, to keep the escaping
# path honest) makes record-key collisions across shards likely — the
# interesting case for merge arithmetic.
NAMES = ("alpha", "beta", "hot path")

locs = st.tuples(st.sampled_from(NAMES), st.integers(0, 128))
branch_maps = st.dictionaries(
    st.tuples(locs, locs),
    st.tuples(st.integers(0, 500), st.integers(0, 40)),
    max_size=12)
sample_maps = st.dictionaries(locs, st.integers(0, 500), max_size=8)


@st.composite
def profiles(draw):
    profile = BinaryProfile(
        event=draw(st.sampled_from(("cycles", "instructions"))),
        lbr=True,
        build_id=draw(st.none() | st.just("bid-a")))
    for key, (count, mispred) in draw(branch_maps).items():
        profile.branches[key] = [count, mispred]
    profile.ip_samples = dict(draw(sample_maps))
    return profile


def same_profile(a, b):
    assert a.branches == b.branches
    assert a.ip_samples == b.ip_samples
    assert (a.event, a.lbr, a.build_id) == (b.event, b.lbr, b.build_id)
    assert write_fdata(a) == write_fdata(b)


@given(profiles(), profiles())
@settings(deadline=None)
def test_merge_commutative(a, b):
    same_profile(merge_profiles([a, b]), merge_profiles([b, a]))


@given(profiles(), profiles(), profiles())
@settings(deadline=None)
def test_merge_associative(a, b, c):
    left = merge_profiles([merge_profiles([a, b]), c])
    right = merge_profiles([a, merge_profiles([b, c])])
    flat = merge_profiles([a, b, c])
    same_profile(left, right)
    same_profile(left, flat)


@given(profiles())
@settings(deadline=None)
def test_merge_singleton_is_normalize(a):
    same_profile(merge_profiles([a]), normalize_profile(a))


@given(profiles())
@settings(deadline=None)
def test_weight_one_identity(a):
    same_profile(merge_profiles([a], weights=[1.0]), normalize_profile(a))
    assert scale_profile(a, 1) is a


@given(profiles())
@settings(deadline=None)
def test_integer_weight_scales_counts(a):
    doubled = merge_profiles([a], weights=[2.0])
    base = normalize_profile(a)
    for key, (count, mispred) in base.branches.items():
        assert doubled.branches[key] == [2 * count, 2 * mispred]
    for loc, count in base.ip_samples.items():
        assert doubled.ip_samples[loc] == 2 * count


@st.composite
def profile_lists_with_permutation(draw):
    items = draw(st.lists(profiles(), min_size=2, max_size=5))
    order = draw(st.permutations(range(len(items))))
    return items, order


@given(profile_lists_with_permutation())
@settings(deadline=None)
def test_merge_order_does_not_change_fdata_output(case):
    """The acceptance pin: shard merge order provably does not change
    the merged .fdata bytes."""
    items, order = case
    merged = merge_profiles(items)
    shuffled = merge_profiles([items[i] for i in order])
    assert write_fdata(merged) == write_fdata(shuffled)


@given(profile_lists_with_permutation())
@settings(deadline=None, max_examples=25)
def test_aggregate_shards_order_invariant(case):
    """Order-invariance holds through the full pipeline (parse, merge,
    normalize), not just the algebra layer."""
    items, order = case
    texts = [write_fdata(p) for p in items]
    merged = aggregate_shards(texts).profile
    shuffled = aggregate_shards([texts[i] for i in order]).profile
    assert write_fdata(merged) == write_fdata(shuffled)


@given(st.lists(profiles(), min_size=1, max_size=6))
@settings(deadline=None, max_examples=25)
def test_parallel_parse_equals_serial(items):
    texts = [write_fdata(p) for p in items]
    serial = aggregate_shards(texts, threads=1)
    parallel = aggregate_shards(texts, threads=4)
    assert write_fdata(serial.profile) == write_fdata(parallel.profile)
    assert serial.to_json() == parallel.to_json()
    assert ([d.render() for d in serial.diagnostics]
            == [d.render() for d in parallel.diagnostics])
