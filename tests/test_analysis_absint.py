"""Abstract-interpretation engine tests: lattices, fixpoint, direction,
landing-pad edge states, and hypothesis properties (the solution is a
fixpoint; the solver is monotone in its boundary)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    BOTTOM,
    TOP,
    AnalysisError,
    BlockResult,
    FlatLattice,
    SetLattice,
    TupleLattice,
    solve,
)
from repro.core.binary_function import BinaryBasicBlock, BinaryFunction

pytestmark = pytest.mark.analysis


def make_func(n, edges):
    func = BinaryFunction("t", 0, 0)
    for i in range(n):
        func.add_block(BinaryBasicBlock(f"b{i}"))
    for a, b in edges:
        func.blocks[f"b{a}"].set_edge(f"b{b}")
    return func


# ---------------------------------------------------------------------------
# Lattice unit tests
# ---------------------------------------------------------------------------


def test_flat_lattice_join():
    lat = FlatLattice()
    assert lat.join(BOTTOM, 5) == 5
    assert lat.join(5, BOTTOM) == 5
    assert lat.join(5, 5) == 5
    assert lat.join(5, 6) is TOP
    assert lat.join(TOP, 5) is TOP
    assert lat.leq(BOTTOM, 5) and lat.leq(5, TOP) and lat.leq(5, 5)
    assert not lat.leq(5, 6) and not lat.leq(TOP, 5)


def test_set_lattice_join_is_union():
    lat = SetLattice()
    assert lat.bottom() == frozenset()
    assert lat.join({1}, {2}) == {1, 2}
    assert lat.leq({1}, {1, 2}) and not lat.leq({3}, {1, 2})


def test_tuple_lattice_pointwise():
    lat = TupleLattice(FlatLattice(), SetLattice())
    assert lat.bottom() == (BOTTOM, frozenset())
    assert lat.join((1, frozenset({1})), (2, frozenset({2}))) \
        == (TOP, frozenset({1, 2}))
    assert lat.leq((BOTTOM, frozenset()), (1, frozenset({9})))


# ---------------------------------------------------------------------------
# Solver behavior
# ---------------------------------------------------------------------------


def test_diamond_join_conflicting_values():
    # b0 -> b1 -> b3, b0 -> b2 -> b3; branches assign different values.
    func = make_func(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    values = {"b1": 10, "b2": 20}

    def transfer(block, state):
        return values.get(block.label, state)

    in_states, out_states = solve(func, FlatLattice(), transfer, boundary=0)
    assert in_states["b0"] == 0
    assert out_states["b1"] == 10 and out_states["b2"] == 20
    assert in_states["b3"] is TOP


def test_diamond_join_agreeing_values():
    func = make_func(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    in_states, _ = solve(func, FlatLattice(), lambda b, s: s, boundary=7)
    assert in_states["b3"] == 7  # same concrete value survives the join


def test_unreachable_block_stays_bottom():
    func = make_func(3, [(0, 1)])  # b2 has no in-edges
    in_states, out_states = solve(func, FlatLattice(),
                                  lambda b, s: s, boundary=1)
    assert in_states["b2"] is BOTTOM
    assert out_states["b2"] is BOTTOM


def test_single_block_function():
    func = make_func(1, [])
    in_states, out_states = solve(func, FlatLattice(),
                                  lambda b, s: s, boundary=42)
    assert in_states["b0"] == 42 and out_states["b0"] == 42


def test_irreducible_cfg_converges():
    # Two entries into a two-node cycle: e -> a, e -> b, a <-> b.
    func = make_func(3, [(0, 1), (0, 2), (1, 2), (2, 1)])
    values = {"b1": 1, "b2": 2}
    in_states, _ = solve(func, FlatLattice(),
                         lambda b, s: values.get(b.label, s), boundary=0)
    # Each cycle node receives both the entry value and the other
    # node's value: conflicting -> TOP, and the solver terminates.
    assert in_states["b1"] is TOP and in_states["b2"] is TOP


def test_backward_direction_accumulates():
    # Chain b0 -> b1 -> b2; each block contributes its label backward.
    func = make_func(3, [(0, 1), (1, 2)])

    def transfer(block, state):
        return frozenset(state) | {block.label}

    _, out_states = solve(func, SetLattice(), transfer,
                          direction="backward")
    assert out_states["b0"] == {"b0", "b1", "b2"}
    assert out_states["b2"] == {"b2"}


def test_landing_pad_edge_states():
    # b0's normal successor is b2; b1 is its landing pad, which must
    # receive the mid-block (call-site) state, not the fall-off state.
    func = make_func(3, [(0, 2)])
    func.blocks["b0"].landing_pads.append("b1")
    func.blocks["b1"].is_landing_pad = True

    def transfer(block, state):
        if block.label == "b0":
            return BlockResult("normal", {"b1": "unwound"})
        return state

    in_states, _ = solve(func, FlatLattice(), transfer, boundary="entry")
    assert in_states["b1"] == "unwound"
    assert in_states["b2"] == "normal"


def test_landing_pads_excluded_when_disabled():
    func = make_func(2, [])
    func.blocks["b0"].landing_pads.append("b1")
    in_states, _ = solve(func, FlatLattice(), lambda b, s: s,
                         boundary=1, include_landing_pads=False)
    assert in_states["b1"] is BOTTOM


def test_non_monotone_transfer_raises():
    class Unbounded:
        def bottom(self):
            return 0

        def join(self, a, b):
            return max(a, b)

    func = make_func(2, [(0, 1), (1, 0)])  # cycle keeps feeding itself
    with pytest.raises(AnalysisError):
        solve(func, Unbounded(), lambda b, s: s + 1)


def test_empty_function():
    func = BinaryFunction("t", 0, 0)
    assert solve(func, FlatLattice(), lambda b, s: s) == ({}, {})


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------

graphs = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                 max_size=12),
    ))

flat_values = st.sampled_from([BOTTOM, 1, 2, TOP])


def _block_transfer(values):
    def transfer(block, state):
        return values.get(block.label, state)
    return transfer


@settings(max_examples=60, deadline=None)
@given(graphs, st.dictionaries(st.integers(0, 5), st.integers(0, 3),
                               max_size=6))
def test_solution_is_a_fixpoint(graph, assigns):
    """Re-applying the transfer functions changes nothing: for every
    edge, the predecessor's out-state flows into the successor, and the
    in-state is exactly the join over predecessor contributions."""
    n, edges = graph
    func = make_func(n, edges)
    lat = FlatLattice()
    values = {f"b{i}": v for i, v in assigns.items() if i < n}
    transfer = _block_transfer(values)

    in_states, out_states = solve(func, lat, transfer, boundary=0)

    for label, block in func.blocks.items():
        # out is the transfer applied to in.
        if in_states[label] is not BOTTOM:
            assert out_states[label] == transfer(block, in_states[label])
        # in is the join of predecessor outs (plus boundary at entry).
        expect = 0 if label == func.entry_label else BOTTOM
        for pred, pblock in func.blocks.items():
            if label in pblock.successors and out_states[pred] is not BOTTOM:
                expect = lat.join(expect, out_states[pred])
        assert in_states[label] == expect

    # Determinism: a second run reproduces the result exactly.
    again = solve(func, lat, transfer, boundary=0)
    assert again == (in_states, out_states)


@settings(max_examples=60, deadline=None)
@given(graphs, flat_values, flat_values,
       st.dictionaries(st.integers(0, 5), st.integers(0, 3), max_size=6))
def test_solver_is_monotone_in_boundary(graph, b1, b2, assigns):
    """A weaker (higher) boundary can only weaken the solution."""
    lat = FlatLattice()
    if not lat.leq(b1, b2):
        b1, b2 = b2, b1
    if not lat.leq(b1, b2):
        return  # incomparable concrete values
    n, edges = graph
    func = make_func(n, edges)
    values = {f"b{i}": v for i, v in assigns.items() if i < n}
    transfer = _block_transfer(values)

    lo_in, lo_out = solve(func, lat, transfer, boundary=b1)
    hi_in, hi_out = solve(func, lat, transfer, boundary=b2)
    for label in func.blocks:
        assert lat.leq(lo_in[label], hi_in[label])
        assert lat.leq(lo_out[label], hi_out[label])
