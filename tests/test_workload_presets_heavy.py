"""Slow preset-level differential tests (every named preset, reduced
iteration counts): the generated program, the compiled binary and the
BOLTed binary must agree with the reference interpreter."""

import pytest

from repro.harness import build_workload, measure, run_bolt, sample_profile
from repro.lang import parse_module
from repro.lang.interp import Interpreter
from repro.workloads import PRESETS, make_workload

SHRUNK = {
    "hhvm": 60,
    "tao": 60,
    "proxygen": 60,
    "multifeed1": 60,
    "multifeed2": 60,
    "compiler": 50,
    "mini": 60,
}


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_preset_end_to_end(name):
    workload = make_workload(name, iterations=SHRUNK[name])
    modules = [parse_module(t, n) for n, t in
               workload.sources + workload.lib_sources
               + workload.asm_sources]
    interp = Interpreter(modules, max_steps=80_000_000)
    interp.set_array("mainmod", "input", workload.inputs["mainmod::input"])
    interp.run("main")

    built = build_workload(workload, lto=(name == "hhvm"))
    baseline = measure(built)
    assert baseline.output == interp.output, f"{name}: compile mismatch"

    profile, _ = sample_profile(built)
    result = run_bolt(built, profile)
    optimized = measure(result.binary, inputs=workload.inputs)
    assert optimized.output == interp.output, f"{name}: BOLT mismatch"
