"""Unit tests for the structured diagnostics collector."""

import pytest

from repro.core.diagnostics import (
    Diagnostics,
    Severity,
    StrictModeError,
)


def test_severity_tags_and_ordering():
    assert Severity.NOTE < Severity.WARNING < Severity.ERROR
    assert Severity.NOTE.tag == "BOLT-INFO"
    assert Severity.WARNING.tag == "BOLT-WARNING"
    assert Severity.ERROR.tag == "BOLT-ERROR"


def test_collects_and_filters():
    diags = Diagnostics()
    diags.note("cfg", "built 10 functions")
    diags.warning("profile", "stale profile", function="foo")
    diags.error("emit", "did not fit")

    assert len(diags) == 3
    assert [d.severity for d in diags.warnings] == [Severity.WARNING]
    assert [d.severity for d in diags.errors] == [Severity.ERROR]
    assert diags.worst() == Severity.ERROR
    assert [d.message for d in diags.for_function("foo")] == ["stale profile"]


def test_render_respects_min_severity():
    diags = Diagnostics()
    diags.note("cfg", "chatter")
    diags.warning("passes", "contained", function="bar")
    lines = diags.render(Severity.WARNING)
    assert len(lines) == 1
    assert lines[0].startswith("BOLT-WARNING:")
    assert "bar" in lines[0]
    assert len(diags.render(Severity.NOTE)) == 2


def test_strict_mode_raises_on_warning_not_note():
    diags = Diagnostics(strict=True)
    diags.note("cfg", "fine")
    with pytest.raises(StrictModeError):
        diags.warning("passes", "something was contained")
    with pytest.raises(StrictModeError):
        diags.error("emit", "broken")


def test_empty_collector():
    diags = Diagnostics()
    assert len(diags) == 0
    assert diags.worst() is None
    assert diags.render(Severity.NOTE) == []
